// Threshold-based dynamic replication baseline.
//
// The paper's related-work section critiques dynamic replication schemes
// (e.g. Rabinovich et al. [15]) whose behaviour hinges on tuned thresholds:
// "the use of threshold values makes the performance of the scheme dependent
// upon their chosen values". This baseline makes that critique measurable:
// each site keeps an exponentially-decayed access count per object and
//   * replicates an object once its count reaches `replicate_at`,
//   * drops replicas whose count has decayed below `drop_below` when space
//     is needed (never evicting anything hotter than the newcomer).
// Downloads are served locally iff the object is currently replicated.
//
// The Simulator drives it through the same request streams as the LRU
// baseline (see Simulator::simulate_threshold).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/entities.h"

namespace mmr {

struct ThresholdParams {
  double replicate_at = 3.0;   ///< decayed hits needed to create a replica
  double drop_below = 0.5;     ///< replicas below this are eviction victims
  double decay_per_second = 0.01;  ///< exponential decay rate of counts

  void validate() const;
};

/// Per-site replica manager. Time flows monotonically through access().
class ThresholdReplicator {
 public:
  ThresholdReplicator(std::uint64_t capacity_bytes, ThresholdParams params);

  /// Records an access to object k (of `bytes` size) at time `now`.
  /// Returns true iff the object is served locally (replica existed before
  /// this access — a replica created *by* this access serves from R once,
  /// like a cache miss).
  bool access(ObjectId k, std::uint64_t bytes, double now);

  bool replicated(ObjectId k) const { return replicas_.count(k) > 0; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t replica_count() const { return replicas_.size(); }
  std::uint64_t creations() const { return creations_; }
  std::uint64_t drops() const { return drops_; }

 private:
  struct Counter {
    double value = 0;
    double last_update = 0;
  };

  double decayed_count(ObjectId k, double now) const;
  void bump(ObjectId k, double now);
  /// Tries to make room for `bytes` by dropping cold replicas; returns true
  /// if the newcomer (with count `newcomer_count`) fits afterwards.
  bool make_room(std::uint64_t bytes, double newcomer_count, double now);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  ThresholdParams params_;
  std::unordered_map<ObjectId, Counter> counts_;
  std::unordered_map<ObjectId, std::uint64_t> replicas_;  // -> bytes
  std::uint64_t creations_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace mmr
