// Size-aware LRU cache used by the ideal LRU caching/redirection baseline.
//
// Keys are object ids; each entry carries a byte size and the cache holds at
// most `capacity_bytes` in total. Insertion of an oversized object is
// rejected (it can never fit); otherwise least-recently-used entries are
// evicted until the new entry fits.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "model/entities.h"

namespace mmr {

class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_bytes);

  /// Looks up the object; a hit refreshes recency. Returns true on hit.
  bool access(ObjectId key);
  /// Peeks without touching recency (for tests/diagnostics).
  bool contains(ObjectId key) const;
  /// Inserts (or refreshes) the object, evicting LRU entries to make room.
  /// Returns false iff bytes > capacity (object cannot be cached at all).
  bool insert(ObjectId key, std::uint64_t bytes);
  /// Removes the object if present; returns true if it was there.
  bool erase(ObjectId key);

  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t capacity_bytes() const { return capacity_; }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    ObjectId key;
    std::uint64_t bytes;
  };

  void evict_for(std::uint64_t bytes);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<ObjectId, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace mmr
