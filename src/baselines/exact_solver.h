// Exhaustive optimal solver for tiny instances — the test oracle.
//
// Enumerates every (X, X') bit vector, keeps the best feasible assignment
// under D = alpha1*D1 + alpha2*D2 subject to Eq. 8–10. Exponential in the
// total number of slots; refuses instances above `max_bits`.
#pragma once

#include <cstdint>
#include <optional>

#include "model/assignment.h"
#include "model/cost.h"
#include "model/system.h"

namespace mmr {

struct ExactSolution {
  Assignment assignment;
  double objective = 0;
};

/// Returns the optimal feasible assignment, or nullopt if no assignment
/// satisfies the constraints. Throws CheckError if the instance has more
/// than `max_bits` decision slots.
std::optional<ExactSolution> solve_exact(const SystemModel& sys,
                                         const Weights& w,
                                         std::uint32_t max_bits = 24);

/// Number of decision slots (compulsory + optional refs) in the instance.
std::uint32_t count_decision_bits(const SystemModel& sys);

}  // namespace mmr
