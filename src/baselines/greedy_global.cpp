#include "baselines/greedy_global.h"

#include <queue>

#include "core/delta.h"
#include "util/check.h"

namespace mmr {

namespace {

struct Candidate {
  double priority;  // improvement per new byte (higher first)
  PageId page;
  std::uint32_t index;
  bool compulsory;
  std::uint64_t epoch;
  bool operator<(const Candidate& o) const { return priority < o.priority; }
};

/// Improvement (positive is good) of marking the slot local.
double mark_gain(const Assignment& asg, const PageObjectRef& ref,
                 const Weights& w) {
  return ref.compulsory ? -mark_comp_delta(asg, ref.page, ref.index, w)
                        : -mark_opt_delta(asg, ref.page, ref.index, w);
}

}  // namespace

Assignment greedy_global_allocate(const SystemModel& sys, const Weights& w,
                                  GreedyGlobalStats* stats) {
  Assignment asg(sys);
  GreedyGlobalStats local_stats;

  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    const Server& server = sys.server(i);
    std::vector<std::uint64_t> page_epoch(sys.num_pages(), 0);
    std::priority_queue<Candidate> heap;

    auto priority_of = [&](const PageObjectRef& ref) {
      const double gain = mark_gain(asg, ref, w);
      const Page& p = sys.page(ref.page);
      const ObjectId k = ref.compulsory ? p.compulsory[ref.index]
                                        : p.optional[ref.index].object;
      // Stored objects cost no new bytes: rank by raw gain with a tier
      // bonus so they always beat byte-costly candidates of equal gain.
      if (asg.object_stored(i, k)) return gain >= 0 ? 1e18 + gain : gain;
      return gain / static_cast<double>(sys.object_bytes(k));
    };

    auto push_page = [&](PageId j) {
      const Page& p = sys.page(j);
      const std::uint64_t e = page_epoch[j];
      for (std::uint32_t idx = 0; idx < p.compulsory.size(); ++idx) {
        if (asg.comp_local(j, idx)) continue;
        const PageObjectRef ref{j, true, idx};
        heap.push({priority_of(ref), j, idx, true, e});
      }
      for (std::uint32_t idx = 0; idx < p.optional.size(); ++idx) {
        if (asg.opt_local(j, idx)) continue;
        const PageObjectRef ref{j, false, idx};
        heap.push({priority_of(ref), j, idx, false, e});
      }
    };
    for (PageId j : sys.pages_on_server(i)) push_page(j);

    while (!heap.empty()) {
      const Candidate top = heap.top();
      heap.pop();
      if (top.epoch != page_epoch[top.page]) continue;  // stale
      const PageObjectRef ref{top.page, top.compulsory, top.index};
      if (asg.ref_local(ref)) continue;

      const double gain = mark_gain(asg, ref, w);
      if (gain <= 0) continue;  // no longer an improvement

      const Page& p = sys.page(top.page);
      const ObjectId k = top.compulsory ? p.compulsory[top.index]
                                        : p.optional[top.index].object;
      // Feasibility under Eq. 8 and Eq. 10.
      const double workload = slot_workload(sys, ref);
      if (server.proc_capacity != kUnlimited &&
          asg.server_proc_load(i) + workload >
              server.proc_capacity + kCapacitySlack) {
        continue;
      }
      const bool stored = asg.object_stored(i, k);
      if (!stored && asg.storage_used(i) + sys.object_bytes(k) >
                         server.storage_capacity) {
        continue;
      }

      asg.set_ref_local(ref, true);
      ++local_stats.marks_applied;
      if (!stored) ++local_stats.objects_stored;
      ++page_epoch[top.page];
      push_page(top.page);
      if (!stored) {
        // The object is now free for every other page referencing it:
        // refresh those pages' candidate priorities.
        for (const PageObjectRef& other : sys.object_refs_on_server(i, k)) {
          if (other.page == top.page) continue;
          ++page_epoch[other.page];
          push_page(other.page);
        }
      }
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return asg;
}

}  // namespace mmr
