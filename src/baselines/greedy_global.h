// Centralized greedy file-allocation baseline.
//
// Related work ([17]-[20] in the paper) frames replica placement as a file
// allocation problem solved centrally. This baseline does exactly that:
// starting from all-remote, it repeatedly applies the single (page, object)
// local-download mark with the best objective improvement per byte of *new*
// storage, subject to Eq. 8 and Eq. 10, until no improving feasible mark
// remains. Marks whose object is already stored cost zero bytes and are
// taken greedily by raw improvement.
//
// It serves as an ablation target for the paper's decentralized
// partition-then-repair pipeline: same constraints, different construction.
#pragma once

#include "model/assignment.h"
#include "model/cost.h"
#include "model/system.h"

namespace mmr {

struct GreedyGlobalStats {
  std::uint32_t marks_applied = 0;
  std::uint32_t objects_stored = 0;
};

/// Builds the placement; respects per-server storage and processing
/// capacities (the repository constraint, Eq. 9, is not considered — run
/// offload_repository afterwards if needed).
Assignment greedy_global_allocate(const SystemModel& sys, const Weights& w,
                                  GreedyGlobalStats* stats = nullptr);

}  // namespace mmr
