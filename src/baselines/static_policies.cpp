#include "baselines/static_policies.h"

namespace mmr {

Assignment make_remote_assignment(const SystemModel& sys) {
  return Assignment(sys);  // all-remote is the default construction
}

Assignment make_local_assignment(const SystemModel& sys) {
  Assignment asg(sys);
  for (PageId j = 0; j < sys.num_pages(); ++j) {
    const Page& p = sys.page(j);
    for (std::uint32_t idx = 0; idx < p.compulsory.size(); ++idx) {
      asg.set_comp_local(j, idx, true);
    }
    for (std::uint32_t idx = 0; idx < p.optional.size(); ++idx) {
      asg.set_opt_local(j, idx, true);
    }
  }
  return asg;
}

}  // namespace mmr
