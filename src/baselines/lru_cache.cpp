#include "baselines/lru_cache.h"

#include "util/check.h"

namespace mmr {

LruCache::LruCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

bool LruCache::access(ObjectId key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

bool LruCache::contains(ObjectId key) const { return map_.count(key) > 0; }

void LruCache::evict_for(std::uint64_t bytes) {
  while (used_ + bytes > capacity_) {
    MMR_DCHECK(!order_.empty());
    const Entry& victim = order_.back();
    used_ -= victim.bytes;
    map_.erase(victim.key);
    order_.pop_back();
    ++evictions_;
  }
}

bool LruCache::insert(ObjectId key, std::uint64_t bytes) {
  if (bytes > capacity_) return false;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh; sizes are immutable per object so bytes must match.
    MMR_DCHECK(it->second->bytes == bytes);
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  evict_for(bytes);
  order_.push_front({key, bytes});
  map_[key] = order_.begin();
  used_ += bytes;
  return true;
}

bool LruCache::erase(ObjectId key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  used_ -= it->second->bytes;
  order_.erase(it->second);
  map_.erase(it);
  return true;
}

}  // namespace mmr
