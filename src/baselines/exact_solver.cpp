#include "baselines/exact_solver.h"

#include <vector>

#include "util/check.h"

namespace mmr {

std::uint32_t count_decision_bits(const SystemModel& sys) {
  std::uint32_t bits = 0;
  for (PageId j = 0; j < sys.num_pages(); ++j) {
    bits += static_cast<std::uint32_t>(sys.page(j).compulsory.size() +
                                       sys.page(j).optional.size());
  }
  return bits;
}

std::optional<ExactSolution> solve_exact(const SystemModel& sys,
                                         const Weights& w,
                                         std::uint32_t max_bits) {
  const std::uint32_t bits = count_decision_bits(sys);
  MMR_CHECK_MSG(bits <= max_bits, "instance too large for exact enumeration: "
                                      << bits << " bits > " << max_bits);

  // Flatten the slots once so each enumeration step is a cheap bit probe.
  std::vector<PageObjectRef> slots;
  slots.reserve(bits);
  for (PageId j = 0; j < sys.num_pages(); ++j) {
    const Page& p = sys.page(j);
    for (std::uint32_t idx = 0; idx < p.compulsory.size(); ++idx) {
      slots.push_back({j, true, idx});
    }
    for (std::uint32_t idx = 0; idx < p.optional.size(); ++idx) {
      slots.push_back({j, false, idx});
    }
  }

  Assignment asg(sys);
  std::optional<ExactSolution> best;
  const std::uint64_t combos = 1ull << bits;
  std::uint64_t previous = 0;
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    // Gray-order style incremental update: flip only changed bits.
    const std::uint64_t changed = mask ^ previous;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if ((changed >> b) & 1) {
        asg.set_ref_local(slots[b], (mask >> b) & 1);
      }
    }
    previous = mask;

    // Feasibility from the incremental caches.
    bool feasible = within_capacity(asg.repo_proc_load(),
                                    sys.repository().proc_capacity);
    for (ServerId i = 0; feasible && i < sys.num_servers(); ++i) {
      feasible = within_capacity(asg.server_proc_load(i),
                                 sys.server(i).proc_capacity) &&
                 asg.storage_used(i) <= sys.server(i).storage_capacity;
    }
    if (!feasible) continue;

    const double d = objective_total_cached(asg, w);
    if (!best || d < best->objective) {
      best = ExactSolution{asg, d};
    }
  }
  return best;
}

}  // namespace mmr
