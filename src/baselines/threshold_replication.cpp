#include "baselines/threshold_replication.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mmr {

void ThresholdParams::validate() const {
  MMR_CHECK_MSG(replicate_at > 0, "replicate_at must be positive");
  MMR_CHECK_MSG(drop_below >= 0 && drop_below < replicate_at,
                "drop_below must be in [0, replicate_at)");
  MMR_CHECK_MSG(decay_per_second >= 0, "decay_per_second must be >= 0");
}

ThresholdReplicator::ThresholdReplicator(std::uint64_t capacity_bytes,
                                         ThresholdParams params)
    : capacity_(capacity_bytes), params_(params) {
  params_.validate();
}

double ThresholdReplicator::decayed_count(ObjectId k, double now) const {
  const auto it = counts_.find(k);
  if (it == counts_.end()) return 0;
  return it->second.value *
         std::exp(-params_.decay_per_second * (now - it->second.last_update));
}

void ThresholdReplicator::bump(ObjectId k, double now) {
  Counter& c = counts_[k];
  c.value = c.value * std::exp(-params_.decay_per_second *
                               (now - c.last_update)) +
            1.0;
  c.last_update = now;
}

bool ThresholdReplicator::make_room(std::uint64_t bytes,
                                    double newcomer_count, double now) {
  if (used_ + bytes <= capacity_) return true;
  // Gather eviction victims: replicas colder than both drop_below and the
  // newcomer, coldest first.
  std::vector<std::pair<double, ObjectId>> victims;
  for (const auto& [k, sz] : replicas_) {
    (void)sz;
    const double count = decayed_count(k, now);
    if (count < params_.drop_below && count < newcomer_count) {
      victims.emplace_back(count, k);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (const auto& [count, k] : victims) {
    if (used_ + bytes <= capacity_) break;
    (void)count;
    used_ -= replicas_[k];
    replicas_.erase(k);
    ++drops_;
  }
  return used_ + bytes <= capacity_;
}

bool ThresholdReplicator::access(ObjectId k, std::uint64_t bytes,
                                 double now) {
  const bool was_replicated = replicas_.count(k) > 0;
  bump(k, now);
  if (!was_replicated) {
    const double count = decayed_count(k, now);
    if (count >= params_.replicate_at && bytes <= capacity_ &&
        make_room(bytes, count, now)) {
      replicas_[k] = bytes;
      used_ += bytes;
      ++creations_;
    }
  }
  return was_replicated;
}

}  // namespace mmr
