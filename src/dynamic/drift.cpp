#include "dynamic/drift.h"

#include <algorithm>

#include "util/check.h"

namespace mmr {

std::uint32_t apply_popularity_drift(SystemModel& sys,
                                     const DriftParams& params, Rng& rng) {
  MMR_CHECK_MSG(params.hot_churn >= 0 && params.hot_churn <= 1,
                "hot_churn must be in [0,1]");
  MMR_CHECK_MSG(params.hot_quantile > 0 && params.hot_quantile < 1,
                "hot_quantile must be in (0,1)");
  std::uint32_t swaps = 0;
  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    const auto& pages = sys.pages_on_server(i);
    if (pages.size() < 2) continue;

    // Rank the site's pages by frequency; the top (1 - hot_quantile) are
    // the hot set.
    std::vector<PageId> ranked(pages.begin(), pages.end());
    std::sort(ranked.begin(), ranked.end(), [&](PageId a, PageId b) {
      return sys.page(a).frequency > sys.page(b).frequency;
    });
    const auto hot_count = std::max<std::size_t>(
        1, static_cast<std::size_t>((1.0 - params.hot_quantile) *
                                    static_cast<double>(ranked.size())));
    const auto cold_count = ranked.size() - hot_count;
    if (cold_count == 0) continue;
    const auto churn = static_cast<std::size_t>(
        params.hot_churn * static_cast<double>(hot_count) + 0.5);

    // Pick distinct hot victims and cold risers, swap their frequencies —
    // a breaking story displaces yesterday's headline.
    const auto hot_picks = rng.sample_without_replacement(
        static_cast<std::uint32_t>(hot_count),
        static_cast<std::uint32_t>(std::min(churn, hot_count)));
    const auto cold_picks = rng.sample_without_replacement(
        static_cast<std::uint32_t>(cold_count),
        static_cast<std::uint32_t>(std::min(churn, cold_count)));
    const std::size_t n = std::min(hot_picks.size(), cold_picks.size());
    for (std::size_t x = 0; x < n; ++x) {
      const PageId hot = ranked[hot_picks[x]];
      const PageId cold = ranked[hot_count + cold_picks[x]];
      const double f_hot = sys.page(hot).frequency;
      const double f_cold = sys.page(cold).frequency;
      sys.set_page_frequency(hot, f_cold);
      sys.set_page_frequency(cold, f_hot);
      ++swaps;
    }
  }
  return swaps;
}

DynamicExperimentResult run_dynamic_experiment(
    SystemModel& sys, const DynamicExperimentConfig& config) {
  DynamicExperimentResult result;
  Rng rng(config.seed);

  // Epoch-0 placement, kept frozen for the "static" strategy.
  const PolicyResult initial = run_replication_policy(sys, config.policy);
  Assignment static_placement = initial.assignment;

  for (std::uint32_t epoch = 0; epoch < config.drift.epochs; ++epoch) {
    if (epoch > 0) {
      Rng drift_rng = rng.split(0xD1F7 + epoch);
      apply_popularity_drift(sys, config.drift, drift_rng);
      // Frequencies changed under the placements' feet; refresh the cached
      // loads so the periodic re-run and the simulator see current values.
      static_placement.recompute_caches();
    }

    // Periodic strategy: re-run the full pipeline on current frequencies.
    const PolicyResult periodic = run_replication_policy(sys, config.policy);

    // Identical request streams per epoch across strategies.
    const Simulator simulator(sys, config.sim);
    const std::uint64_t sim_seed = mix_seed(config.seed, 0x300 + epoch);

    EpochMetrics em;
    em.static_response =
        simulator.simulate(static_placement, sim_seed).page_response.mean();
    em.periodic_response =
        simulator.simulate(periodic.assignment, sim_seed)
            .page_response.mean();
    if (config.run_lru) {
      em.lru_response = simulator.simulate_lru(sim_seed).page_response.mean();
      result.lru_overall.add(em.lru_response);
    }
    result.static_overall.add(em.static_response);
    result.periodic_overall.add(em.periodic_response);
    result.epochs.push_back(em);
  }
  return result;
}

}  // namespace mmr
