// Dynamic-popularity extension (the paper's future-work hook, Sec. 4.1/7:
// "allocation decisions made off-line using the past access patterns may be
// inaccurate due to the dynamic nature of the Web, e.g., breaking news").
//
// Models popularity churn as an epoch process: each epoch, a fraction of the
// hot set is replaced by previously-cold pages (breaking stories) whose
// frequencies are swapped in. Three strategies are compared:
//   static   — the placement computed at epoch 0 is kept forever,
//   periodic — the replication algorithm re-runs every epoch on the new
//              frequencies (the paper's "executed during off-peak hours"),
//   LRU      — the caching baseline, which adapts by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "model/system.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mmr {

struct DriftParams {
  std::uint32_t epochs = 8;
  /// Fraction of each site's hot set replaced by cold pages per epoch.
  double hot_churn = 0.25;
  /// Pages with frequency above this quantile of their site count as hot.
  double hot_quantile = 0.90;
};

/// Swaps the frequencies of `hot_churn` of each site's hottest pages with
/// randomly chosen cold pages, in place. Deterministic in `rng`.
/// Returns the number of swaps performed.
std::uint32_t apply_popularity_drift(SystemModel& sys,
                                     const DriftParams& params, Rng& rng);

struct EpochMetrics {
  double static_response = 0;    ///< epoch-0 placement, never updated
  double periodic_response = 0;  ///< placement recomputed this epoch
  double lru_response = 0;       ///< adaptive caching baseline
};

struct DynamicExperimentResult {
  std::vector<EpochMetrics> epochs;
  RunningStats static_overall;
  RunningStats periodic_overall;
  RunningStats lru_overall;
};

struct DynamicExperimentConfig {
  DriftParams drift;
  SimParams sim;
  PolicyOptions policy;
  std::uint64_t seed = 1;
  bool run_lru = true;
};

/// Runs the epoch loop on `sys` (mutating its frequencies as the epochs
/// advance). The same per-epoch request streams are used for all strategies.
DynamicExperimentResult run_dynamic_experiment(
    SystemModel& sys, const DynamicExperimentConfig& config);

}  // namespace mmr
