// Streaming telemetry for million-request simulations
// (docs/OBSERVABILITY.md "Streaming telemetry").
//
// Sample capture (SimParams::capture_samples) stores every response and the
// flight recorder subsamples 1-in-N; both lose the tail once request counts
// explode. This module keeps bounded-memory summaries instead: a response
// and a stretch QuantileSketch, a SpaceSaving hot-set tracker over
// (page, server) request keys weighted by remote miss cost, and a windowed
// SLO aggregator — all exactly mergeable.
//
// Determinism follows the provenance discipline: each simulate call
// produces one ObsShard tagged (run, policy, mode); snapshot() sorts the
// shards canonically and merges per (policy, mode) group, so the
// mmr-sketch artifact bytes are independent of thread count and of the
// order runs finished in. Everything is off by default (set_obs_enabled)
// and costs nothing when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/provenance.h"
#include "model/entities.h"
#include "obs/heavy_hitters.h"
#include "obs/sketch.h"
#include "obs/window.h"

namespace mmr {

/// Master switch; simulators only ingest while enabled.
bool obs_enabled();
void set_obs_enabled(bool enabled);

struct ObsConfig {
  double alpha = 0.01;               ///< sketch relative-error bound
  std::uint32_t max_buckets = 2048;  ///< per-metric sketch span
  std::uint32_t window_buckets = 512;  ///< per-window cell sketch span
  std::uint32_t hot_capacity = 64;   ///< heavy-hitter entries
  double window_s = 60.0;            ///< virtual-time window width [s]
  SloConfig slo;
};

/// Config applied to shards created AFTER the call; set it before enabling.
ObsConfig obs_config();
void set_obs_config(const ObsConfig& config);

/// One simulate call's worth of telemetry, tagged for canonical merging.
struct ObsShard {
  explicit ObsShard(const ObsConfig& config);

  void observe(PageId page, ServerId server, double t, double response_s,
               double stretch_x, double miss_cost_s);
  void merge(const ObsShard& other);
  std::size_t approx_bytes() const;

  std::uint64_t run = 0;    ///< provenance_run_or_zero() at creation
  std::string policy;       ///< current_metric_label() at creation
  FlightMode mode = FlightMode::kStatic;
  std::uint64_t requests = 0;
  QuantileSketch response;
  QuantileSketch stretch;
  SpaceSavingTracker hot;
  WindowedAggregator windows;
};

/// Thread-safe shard sink. Shards are appended by simulate calls (cheap:
/// one move under the mutex per call) and merged at snapshot time.
class ObsLog {
 public:
  void add(ObsShard&& shard);
  void clear();
  std::size_t size() const;        ///< shards currently held
  std::uint64_t dropped() const;   ///< shards rejected past the cap
  void set_max_shards(std::size_t max_shards);

  /// Shards sorted by (policy, mode, run) and merged per (policy, mode)
  /// group — the canonical order that makes artifact bytes independent of
  /// thread count. The returned shards' `run` is the group's smallest run.
  std::vector<ObsShard> snapshot() const;

 private:
  struct Impl;
  Impl& impl() const;
};

ObsLog& global_obs_log();

/// Merges every group in `groups` into one summary pair; returns false when
/// there is nothing to merge. Used for the overall gauges and CLI table.
bool merge_obs_groups(const std::vector<ObsShard>& groups,
                      QuantileSketch* response_out,
                      QuantileSketch* stretch_out);

/// Sets the main-thread obs.* gauges (obs.response_p50/p95/p99/p999,
/// obs.stretch_p50/p95/p99/p999, obs.requests) from the global log's merged
/// snapshot. Call from the MAIN thread only, after the measured work, so
/// the gauges land deterministically in metrics/bench artifacts. No-op when
/// the log is empty.
void set_obs_gauges();

}  // namespace mmr
