// SpaceSaving heavy-hitter tracker (Metwally et al.) with deterministic
// tie-breaking and a mergeable-summaries merge (Agarwal et al.).
//
// Tracks at most `capacity` keys. A monitored key's `count` overestimates
// its true frequency by at most `error`; any key with true frequency above
// total() / capacity is guaranteed to be monitored. Ties during eviction
// and ranking are broken on the smallest key so every run — and every
// merge order over the canonical shard ordering — produces identical
// output bytes.
//
// Each increment may carry a `weight` (here: seconds of remote miss cost),
// accumulated per key so the report can rank hot objects by both request
// count and the download time they cost.
//
// This sits on the simulator's per-request path, so add() avoids
// per-increment bookkeeping entirely: entries live in a flat slot vector
// and an open-addressing table maps key -> slot, making a hit one probe
// plus two increments. Victim selection exploits that the minimum count
// never decreases: a rescan snapshots every key at the current minimum
// into a key-sorted "min set" that evictions consume through a cursor,
// skipping picks whose count has since grown. Rescans are amortized over
// the snapshots they serve, so eviction is O(capacity) worst case and
// O(log capacity) amortized in the common case.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mmr {

class SpaceSavingTracker {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  ///< estimated frequency (overestimate)
    std::uint64_t error = 0;  ///< max overestimation of `count`
    double weight = 0.0;      ///< accumulated per-increment weight
  };

  explicit SpaceSavingTracker(std::uint32_t capacity = 64);

  /// Inline so the per-request hit path (one probe, two adds) folds into
  /// the caller; misses take the out-of-line fill/evict path.
  void add(std::uint64_t key, double weight = 0.0, std::uint64_t n = 1) {
    if (n == 0) return;
    total_ += n;
    std::uint32_t pos =
        static_cast<std::uint32_t>(hash_key(key)) & table_mask_;
    while (table_slots_[pos] != kEmptySlot) {
      if (table_keys_[pos] == key) {
        Entry& e = slots_[table_slots_[pos]];
        e.count += n;
        e.weight += weight;
        return;
      }
      pos = (pos + 1) & table_mask_;
    }
    add_miss(key, weight, n, pos);
  }

  /// Mergeable-summaries merge: a key absent from one side is assumed to
  /// have that side's minimum counter (its worst-case undetected count).
  /// Requires identical capacity; commutative given the tie-break rule.
  void merge(const SpaceSavingTracker& other);

  /// Monitored entries ranked by (count desc, key asc).
  std::vector<Entry> top() const;

  /// Minimum monitored count when full, else 0 — the bound a key could
  /// hide under without being tracked.
  std::uint64_t min_count() const;

  std::uint32_t capacity() const { return capacity_; }
  std::uint64_t total() const { return total_; }
  std::size_t size() const { return slots_.size(); }

  std::size_t approx_bytes() const;

 private:
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  /// splitmix64 finalizer — the packed keys are sequential ids, so the
  /// table needs real avalanche to avoid probe clustering.
  static std::uint64_t hash_key(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Unmonitored key: fill a free slot or evict. `pos` is the free table
  /// cell add()'s probe ended on, reused for the insert.
  void add_miss(std::uint64_t key, double weight, std::uint64_t n,
                std::uint32_t pos);
  std::uint32_t find_table_pos(std::uint64_t key) const;
  /// Returns the victim slot and stores its table cell in `*cell` — the
  /// probe that validates the pick also locates the cell the caller must
  /// delete, so it is done once.
  std::uint32_t pop_victim(std::uint32_t* cell);
  void rebuild_from(std::vector<Entry>&& ranked);

  std::uint32_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Entry> slots_;  ///< monitored entries, contiguous
  /// Open-addressing key -> slot index (linear probing, backward-shift
  /// deletion, no tombstones). Sized to 4x capacity rounded up to a power
  /// of two, so probe chains stay short at a fixed 25% load factor.
  /// kEmptySlot in table_slots_ marks a free cell; table_keys_ is only
  /// meaningful where occupied (key 0 is a legal packed key).
  std::vector<std::uint64_t> table_keys_;
  std::vector<std::uint32_t> table_slots_;
  std::uint32_t table_mask_ = 0;
  /// Key-sorted snapshot of every key whose count equalled min_scan_ at
  /// the last rescan, consumed through min_cursor_; the pick's slot comes
  /// from a table probe. A pick whose count has since grown is stale and
  /// skipped. Counts never decrease, so the smallest still-valid key IS
  /// the global (min count, smallest key) victim; an exhausted snapshot
  /// triggers a rescan.
  std::vector<std::uint64_t> min_set_;
  std::size_t min_cursor_ = 0;
  std::uint64_t min_scan_ = 0;
};

/// (page, server) request keys packed for the tracker.
inline std::uint64_t pack_hot_key(std::uint32_t page, std::uint32_t server) {
  return (static_cast<std::uint64_t>(page) << 32) | server;
}
inline std::uint32_t hot_key_page(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}
inline std::uint32_t hot_key_server(std::uint64_t key) {
  return static_cast<std::uint32_t>(key & 0xffffffffULL);
}

}  // namespace mmr
