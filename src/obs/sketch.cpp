#include "obs/sketch.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mmr {

QuantileSketch::QuantileSketch(double alpha, std::uint32_t max_buckets)
    : alpha_(alpha),
      gamma_((1.0 + alpha) / (1.0 - alpha)),
      inv_log_gamma_(1.0 / std::log((1.0 + alpha) / (1.0 - alpha))),
      max_buckets_(max_buckets) {
  MMR_CHECK_MSG(alpha > 0.0 && alpha < 1.0,
                "sketch alpha must be in (0, 1)");
  MMR_CHECK_MSG(max_buckets >= 8, "sketch needs at least 8 buckets");
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

std::uint64_t& QuantileSketch::slot(std::int32_t index) {
  if (counts_.empty()) {
    offset_ = index;
    counts_.push_back(0);
    return counts_.front();
  }
  if (index < offset_) {
    const std::size_t grow = static_cast<std::size_t>(offset_ - index);
    if (counts_.size() + grow > max_buckets_) {
      // Below the representable floor: fold into the lowest kept bucket.
      ++collapses_;
      return counts_.front();
    }
    counts_.insert(counts_.begin(), grow, 0);
    offset_ = index;
    return counts_.front();
  }
  const std::size_t pos = static_cast<std::size_t>(index - offset_);
  if (pos >= counts_.size()) {
    counts_.resize(pos + 1, 0);
    if (counts_.size() > max_buckets_) {
      // Collapse the lowest buckets so the span fits again; the tail
      // keeps full resolution.
      const std::size_t excess = counts_.size() - max_buckets_;
      std::uint64_t folded = 0;
      for (std::size_t k = 0; k < excess; ++k) folded += counts_[k];
      counts_.erase(counts_.begin(),
                    counts_.begin() + static_cast<std::ptrdiff_t>(excess));
      counts_.front() += folded;
      offset_ += static_cast<std::int32_t>(excess);
      ++collapses_;
    }
  }
  return counts_[static_cast<std::size_t>(index - offset_)];
}


void QuantileSketch::add_bucket(std::int32_t index, std::uint64_t count) {
  if (count == 0) return;
  slot(index) += count;
  // Callers (parser, merge helpers) maintain total_/sum_/min_/max_
  // themselves only when rebuilding; for direct use keep totals honest.
  total_ += count;
  const double v = bucket_value(index);
  sum_ += v * static_cast<double>(count);
  if (total_ == count) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  MMR_CHECK_MSG(alpha_ == other.alpha_ && max_buckets_ == other.max_buckets_,
                "cannot merge sketches with different resolution");
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
  zero_ += other.zero_;
  collapses_ += other.collapses_;
  for (std::size_t k = 0; k < other.counts_.size(); ++k) {
    if (other.counts_[k] == 0) continue;
    slot(other.offset_ + static_cast<std::int32_t>(k)) += other.counts_[k];
  }
}

double QuantileSketch::quantile(double q) const {
  MMR_CHECK_MSG(total_ > 0, "quantile on an empty sketch");
  MMR_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile rank must be in [0, 1]");
  const double rank = q * static_cast<double>(total_ - 1);
  double cum = static_cast<double>(zero_);
  if (rank < cum || zero_ == total_) return min_;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    cum += static_cast<double>(counts_[k]);
    if (rank < cum) {
      const double v = bucket_value(offset_ + static_cast<std::int32_t>(k));
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

std::vector<std::pair<std::int32_t, std::uint64_t>> QuantileSketch::buckets()
    const {
  std::vector<std::pair<std::int32_t, std::uint64_t>> out;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (counts_[k] == 0) continue;
    out.emplace_back(offset_ + static_cast<std::int32_t>(k), counts_[k]);
  }
  return out;
}

std::size_t QuantileSketch::approx_bytes() const {
  return sizeof(*this) + counts_.capacity() * sizeof(std::uint64_t);
}

bool QuantileSketch::operator==(const QuantileSketch& other) const {
  return alpha_ == other.alpha_ && max_buckets_ == other.max_buckets_ &&
         zero_ == other.zero_ && total_ == other.total_ &&
         sum_ == other.sum_ && min_ == other.min_ && max_ == other.max_ &&
         buckets() == other.buckets();
}

}  // namespace mmr
