#include "obs/window.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace mmr {

namespace {

double burn_rate(std::uint64_t good, std::uint64_t total, double target) {
  if (total == 0) return 0.0;
  const double attainment =
      static_cast<double>(good) / static_cast<double>(total);
  return (1.0 - attainment) / (1.0 - target);
}

}  // namespace

SloConfig parse_slo_spec(const std::string& spec) {
  std::string s = spec;
  std::replace(s.begin(), s.end(), ':', ',');
  SloConfig cfg;
  double* fields[3] = {&cfg.response_s, &cfg.stretch_x, &cfg.target};
  std::size_t pos = 0;
  for (int i = 0; i < 3; ++i) {
    const std::size_t next = s.find(',', pos);
    const bool last = i == 2;
    MMR_CHECK_MSG(last == (next == std::string::npos),
                  "--slo expects RESP_S,STRETCH_X,TARGET, got '" + spec +
                      "'");
    const std::string field =
        s.substr(pos, last ? std::string::npos : next - pos);
    char* end = nullptr;
    *fields[i] = std::strtod(field.c_str(), &end);
    MMR_CHECK_MSG(end != field.c_str() && *end == '\0',
                  "bad number '" + field + "' in --slo spec '" + spec + "'");
    pos = next + 1;
  }
  MMR_CHECK_MSG(cfg.response_s > 0.0, "SLO response threshold must be > 0");
  MMR_CHECK_MSG(cfg.stretch_x >= 1.0, "SLO stretch threshold must be >= 1");
  MMR_CHECK_MSG(cfg.target >= 0.0 && cfg.target < 1.0,
                "SLO target must be in [0, 1)");
  return cfg;
}

WindowedAggregator::WindowedAggregator(double window_s, SloConfig slo,
                                       double alpha,
                                       std::uint32_t sketch_buckets)
    : window_s_(window_s),
      slo_(slo),
      alpha_(alpha),
      sketch_buckets_(sketch_buckets) {
  MMR_CHECK_MSG(window_s > 0.0, "window width must be > 0");
  MMR_CHECK_MSG(slo.target >= 0.0 && slo.target < 1.0,
                "SLO target must be in [0, 1)");
}

WindowedAggregator::WindowedAggregator(const WindowedAggregator& other)
    : window_s_(other.window_s_),
      slo_(other.slo_),
      alpha_(other.alpha_),
      sketch_buckets_(other.sketch_buckets_),
      total_(other.total_),
      cells_(other.cells_) {}

WindowedAggregator& WindowedAggregator::operator=(
    const WindowedAggregator& other) {
  if (this == &other) return *this;
  window_s_ = other.window_s_;
  slo_ = other.slo_;
  alpha_ = other.alpha_;
  sketch_buckets_ = other.sketch_buckets_;
  total_ = other.total_;
  cells_ = other.cells_;
  last_index_ = 0;
  last_cell_ = nullptr;
  return *this;
}

WindowCell& WindowedAggregator::cell_at(double t) {
  const auto index =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(t / window_s_)));
  if (last_cell_ == nullptr || index != last_index_) {
    auto it = cells_.find(index);
    if (it == cells_.end()) {
      it = cells_.emplace(index, WindowCell(alpha_, sketch_buckets_)).first;
    }
    last_index_ = index;
    last_cell_ = &it->second;
  }
  return *last_cell_;
}

void WindowedAggregator::observe(double t, double response_s,
                                 double stretch_x) {
  WindowCell& cell = cell_at(t);
  cell.response.add(response_s);
  ++cell.total;
  if (response_s <= slo_.response_s && stretch_x <= slo_.stretch_x) {
    ++cell.good;
  }
  ++total_;
}

void WindowedAggregator::observe_indexed(double t, double response_s,
                                         std::int32_t response_index,
                                         double stretch_x) {
  WindowCell& cell = cell_at(t);
  cell.response.add_indexed(response_s, response_index);
  ++cell.total;
  if (response_s <= slo_.response_s && stretch_x <= slo_.stretch_x) {
    ++cell.good;
  }
  ++total_;
}

void WindowedAggregator::merge(const WindowedAggregator& other) {
  MMR_CHECK_MSG(window_s_ == other.window_s_ &&
                    slo_.response_s == other.slo_.response_s &&
                    slo_.stretch_x == other.slo_.stretch_x &&
                    slo_.target == other.slo_.target,
                "cannot merge aggregators with different window/SLO config");
  for (const auto& [index, cell] : other.cells_) {
    auto it = cells_.find(index);
    if (it == cells_.end()) {
      it = cells_.emplace(index, WindowCell(alpha_, sketch_buckets_)).first;
    }
    it->second.response.merge(cell.response);
    it->second.good += cell.good;
    it->second.total += cell.total;
  }
  total_ += other.total_;
}

SloReport WindowedAggregator::evaluate() const {
  SloReport report;
  for (const auto& [index, cell] : cells_) {
    SloWindowRow row;
    row.index = index;
    row.t_start_s = static_cast<double>(index) * window_s_;
    row.total = cell.total;
    row.good = cell.good;
    row.attainment =
        cell.total == 0
            ? 1.0
            : static_cast<double>(cell.good) / static_cast<double>(cell.total);
    row.burn = burn_rate(cell.good, cell.total, slo_.target);
    row.p99_s = cell.response.empty() ? 0.0 : cell.response.quantile(0.99);
    report.total += cell.total;
    report.good += cell.good;
    report.worst_burn_1 = std::max(report.worst_burn_1, row.burn);
    report.windows.push_back(row);
  }
  report.attainment = report.total == 0
                          ? 1.0
                          : static_cast<double>(report.good) /
                                static_cast<double>(report.total);
  // Worst burn over any 6 consecutive window indices; windows with no
  // traffic contribute nothing to either counter (no traffic, no burn).
  for (std::size_t i = 0; i < report.windows.size(); ++i) {
    const std::uint64_t first = report.windows[i].index;
    std::uint64_t good = 0, total = 0;
    for (std::size_t j = i;
         j < report.windows.size() && report.windows[j].index < first + 6;
         ++j) {
      good += report.windows[j].good;
      total += report.windows[j].total;
    }
    report.worst_burn_6 =
        std::max(report.worst_burn_6, burn_rate(good, total, slo_.target));
  }
  return report;
}

std::size_t WindowedAggregator::approx_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [index, cell] : cells_) {
    bytes += sizeof(index) + cell.response.approx_bytes() + 4 * sizeof(void*);
  }
  return bytes;
}

}  // namespace mmr
