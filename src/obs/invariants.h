// Conservation-law auditor for the discrete-event simulator
// (docs/OBSERVABILITY.md "Watching the queues").
//
// The timeseries collector (obs/timeseries.h) keeps two independent
// measurements of the same queueing run: per-job accounting (time in
// station, admission counts) and time-integral accounting (the occupancy
// area, window busy time). A correct simulator ties them together through
// classic conservation laws, so auditing them is a cheap end-to-end check
// on the whole event-loop/Station machinery:
//
//   little          L·T = Σ(time in station): the occupancy time-integral
//                   equals the summed sojourns of admitted jobs — Little's
//                   law L = λW with both sides multiplied by the horizon.
//   flow            offered = admitted + redirected + rejected per station,
//                   and arrivals = completions + rejects for the whole run.
//   drain           admitted = served per station (the event loops run to
//                   empty, so nothing is left in flight).
//   utilization     window-spread busy time and the Station's own
//                   busy_seconds() agree when both are expressed as
//                   utilization of horizon × slots.
//   monotone_time   no station ever observed virtual time going backwards.
//
// audit_timeseries() evaluates every law for every (policy, mode) group and
// station; the verdicts serialize as the `mmr-invariants` JSONL artifact
// (schema in docs/FORMATS.md) that `mmr_report` renders and CI gates on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/artifacts.h"
#include "obs/timeseries.h"
#include "util/json.h"

namespace mmr {

struct InvariantTolerances {
  /// Relative slack for Little's law (pure fp-summation noise: both sides
  /// are sums of the same per-job terms in different orders).
  double little_rel = 1e-6;
  /// Relative slack for the busy/utilization cross-check.
  double busy_rel = 1e-6;
};

/// One law evaluated for one station (or for the whole run when
/// `per_station` is false). `error` is |observed - expected| normalized by
/// max(1, |expected|); the verdict is `error <= tolerance`.
struct InvariantCheck {
  std::string policy;
  FlightMode mode = FlightMode::kDes;
  std::string law;
  bool per_station = false;
  std::int32_t station = 0;  ///< kRepositoryStation for R; unused otherwise
  double expected = 0;
  double observed = 0;
  double error = 0;
  double tolerance = 0;
  bool ok = true;
};

struct InvariantsReport {
  std::vector<InvariantCheck> checks;
  std::uint64_t violations = 0;
  bool all_ok() const { return violations == 0; }
};

/// Evaluates every conservation law for every group, in canonical
/// (group, station, law) order — deterministic bytes downstream.
InvariantsReport audit_timeseries(const std::vector<TimeseriesShard>& groups,
                                  const InvariantTolerances& tol = {});

// ---------------------------------------------------------------------------
// mmr-invariants artifact (schema in docs/FORMATS.md).

void write_invariants_jsonl(std::ostream& os, const InvariantsReport& report,
                            const InvariantTolerances& tol,
                            const RunMeta& meta);

/// Snapshots the global timeseries log, audits it and writes the verdicts;
/// creates/truncates `path`.
void write_invariants_file(const std::string& path, const TimeseriesLog& log,
                           const RunMeta& meta,
                           const InvariantTolerances& tol = {});

/// Parsed mmr-invariants document.
struct InvariantsDoc {
  std::string schema;
  int version = 0;
  JsonValue header;
  std::vector<JsonValue> checks;  ///< the "check" lines, in file order
  bool has_summary = false;
  std::uint64_t declared_events = 0;
  std::uint64_t declared_dropped = 0;
  std::uint64_t declared_violations = 0;
  bool declared_ok = true;
};

/// Strict parse: checks the schema name, per-line fields, that each line's
/// verdict matches its own error/tolerance, and that the summary's
/// violation count matches the failed lines. Throws CheckError on
/// violation.
InvariantsDoc parse_invariants_jsonl(const std::string& text);
InvariantsDoc read_invariants_file(const std::string& path);

}  // namespace mmr
