#include "obs/sketch_artifact.h"

#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace mmr {

namespace {

void write_header(std::ostream& os, const ObsConfig& config,
                  const RunMeta& meta) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "mmr-sketch");
  w.kv("version", std::int64_t{1});
  w.kv("alpha", config.alpha);
  w.kv("gamma", (1.0 + config.alpha) / (1.0 - config.alpha));
  w.kv("max_buckets", std::uint64_t{config.max_buckets});
  w.kv("hot_capacity", std::uint64_t{config.hot_capacity});
  w.kv("window_s", config.window_s);
  w.key("slo").begin_object();
  w.kv("response_s", config.slo.response_s);
  w.kv("stretch_x", config.slo.stretch_x);
  w.kv("target", config.slo.target);
  w.end_object();
  w.key("run_meta").begin_object();
  w.kv("tool", meta.tool);
  w.kv("git_describe", build_git_describe());
  for (const auto& [key, raw] : meta.fields) w.key(key).raw(raw);
  w.end_object();
  w.end_object();
  os << '\n';
}

void write_group_prefix(JsonWriter& w, const char* type,
                        const ObsShard& group) {
  w.kv("type", type);
  w.kv("policy", group.policy);
  w.kv("mode", flight_mode_name(group.mode));
}

std::uint64_t write_sketch_line(std::ostream& os, const ObsShard& group,
                                const char* metric,
                                const QuantileSketch& sketch) {
  JsonWriter w(os);
  w.begin_object();
  write_group_prefix(w, "sketch", group);
  w.kv("metric", metric);
  w.kv("count", sketch.count());
  w.kv("zero", sketch.zero_count());
  w.kv("sum", sketch.sum());
  w.kv("min", sketch.min());
  w.kv("max", sketch.max());
  w.kv("collapses", sketch.collapses());
  if (!sketch.empty()) {
    w.kv("p50", sketch.quantile(0.50));
    w.kv("p90", sketch.quantile(0.90));
    w.kv("p99", sketch.quantile(0.99));
    w.kv("p999", sketch.quantile(0.999));
  }
  w.key("buckets").begin_array();
  for (const auto& [index, count] : sketch.buckets()) {
    w.begin_array();
    w.value(std::int64_t{index});
    w.value(count);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return 1;
}

std::uint64_t write_hot_lines(std::ostream& os, const ObsShard& group) {
  std::uint64_t lines = 0;
  std::uint64_t rank = 0;
  for (const SpaceSavingTracker::Entry& e : group.hot.top()) {
    JsonWriter w(os);
    w.begin_object();
    write_group_prefix(w, "hot", group);
    w.kv("rank", ++rank);
    w.kv("page", std::uint64_t{hot_key_page(e.key)});
    w.kv("server", std::uint64_t{hot_key_server(e.key)});
    w.kv("count", e.count);
    w.kv("error", e.error);
    w.kv("miss_cost_s", e.weight);
    w.end_object();
    os << '\n';
    ++lines;
  }
  return lines;
}

std::uint64_t write_window_lines(std::ostream& os, const ObsShard& group,
                                 const SloReport& report) {
  for (const SloWindowRow& row : report.windows) {
    JsonWriter w(os);
    w.begin_object();
    write_group_prefix(w, "window", group);
    w.kv("index", row.index);
    w.kv("t_start_s", row.t_start_s);
    w.kv("requests", row.total);
    w.kv("good", row.good);
    w.kv("attainment", row.attainment);
    w.kv("burn", row.burn);
    w.kv("p99_s", row.p99_s);
    w.end_object();
    os << '\n';
  }
  return report.windows.size();
}

std::uint64_t write_slo_line(std::ostream& os, const ObsShard& group,
                             const SloReport& report) {
  JsonWriter w(os);
  w.begin_object();
  write_group_prefix(w, "slo", group);
  w.kv("windows", static_cast<std::uint64_t>(report.windows.size()));
  w.kv("requests", report.total);
  w.kv("good", report.good);
  w.kv("attainment", report.attainment);
  w.kv("worst_burn_1", report.worst_burn_1);
  w.kv("worst_burn_6", report.worst_burn_6);
  w.end_object();
  os << '\n';
  return 1;
}

void write_to_file(const std::string& path,
                   const std::function<void(std::ostream&)>& body) {
  std::ofstream os(path);
  MMR_CHECK_MSG(os.good(), "cannot open '" + path + "' for writing");
  body(os);
  os.flush();
  MMR_CHECK_MSG(os.good(), "write to '" + path + "' failed");
}

}  // namespace

void write_sketch_jsonl(std::ostream& os, const std::vector<ObsShard>& groups,
                        const ObsConfig& config, std::uint64_t dropped,
                        const RunMeta& meta) {
  write_header(os, config, meta);
  std::uint64_t events = 0;
  for (const ObsShard& group : groups) {
    events += write_sketch_line(os, group, "response", group.response);
    events += write_sketch_line(os, group, "stretch", group.stretch);
    events += write_hot_lines(os, group);
    const SloReport report = group.windows.evaluate();
    events += write_window_lines(os, group, report);
    events += write_slo_line(os, group, report);
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("type", "summary");
  w.kv("events", events);
  w.kv("dropped", dropped);
  w.end_object();
  os << '\n';
}

void write_sketch_file(const std::string& path, const ObsLog& log,
                       const RunMeta& meta) {
  const std::vector<ObsShard> groups = log.snapshot();
  const std::uint64_t dropped = log.dropped();
  write_to_file(path, [&](std::ostream& os) {
    write_sketch_jsonl(os, groups, obs_config(), dropped, meta);
  });
}

std::vector<const JsonValue*> SketchDoc::of_type(
    const std::string& type) const {
  std::vector<const JsonValue*> out;
  for (const JsonValue& e : events) {
    if (e.at("type").str_v == type) out.push_back(&e);
  }
  return out;
}

namespace {

void check_sketch_event(const JsonValue& v, std::size_t line_no) {
  const std::string where = "sketch line " + std::to_string(line_no);
  for (const char* field :
       {"policy", "mode", "metric", "count", "zero", "sum", "min", "max",
        "buckets"}) {
    MMR_CHECK_MSG(v.has(field),
                  where + " lacks the '" + field + "' field");
  }
  const auto count = static_cast<std::uint64_t>(v.at("count").num_v);
  std::uint64_t mass = static_cast<std::uint64_t>(v.at("zero").num_v);
  for (const JsonValue& pair : v.at("buckets").arr) {
    MMR_CHECK_MSG(pair.arr.size() == 2,
                  where + " has a malformed bucket pair");
    mass += static_cast<std::uint64_t>(pair.arr[1].num_v);
  }
  MMR_CHECK_MSG(mass == count,
                where + " bucket counts sum to " + std::to_string(mass) +
                    " but count is " + std::to_string(count));
}

void check_window_event(const JsonValue& v, std::size_t line_no) {
  const std::string where = "window line " + std::to_string(line_no);
  for (const char* field : {"index", "requests", "good", "attainment"}) {
    MMR_CHECK_MSG(v.has(field),
                  where + " lacks the '" + field + "' field");
  }
  MMR_CHECK_MSG(v.at("good").num_v <= v.at("requests").num_v,
                where + " reports more good requests than requests");
}

}  // namespace

SketchDoc parse_sketch_jsonl(const std::string& text) {
  SketchDoc doc;
  std::istringstream is(text);
  std::string line;
  bool have_header = false;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue v = json_parse(line);
    MMR_CHECK_MSG(v.is_object(), "sketch line " + std::to_string(line_no) +
                                     " is not a JSON object");
    if (!have_header) {
      MMR_CHECK_MSG(v.has("schema"),
                    "sketch header line lacks a 'schema' field");
      doc.schema = v.at("schema").str_v;
      MMR_CHECK_MSG(doc.schema == "mmr-sketch",
                    "unknown sketch schema '" + doc.schema + "'");
      doc.version = static_cast<int>(v.at("version").num_v);
      MMR_CHECK_MSG(v.has("alpha") && v.has("window_s") && v.has("slo"),
                    "sketch header lacks the telemetry config");
      doc.header = std::move(v);
      have_header = true;
      continue;
    }
    MMR_CHECK_MSG(v.has("type"), "sketch line " + std::to_string(line_no) +
                                     " lacks a 'type' field");
    const std::string& type = v.at("type").str_v;
    if (type == "summary") {
      MMR_CHECK_MSG(!doc.has_summary, "duplicate sketch summary line");
      doc.has_summary = true;
      doc.declared_events = static_cast<std::uint64_t>(v.at("events").num_v);
      doc.declared_dropped =
          static_cast<std::uint64_t>(v.at("dropped").num_v);
      continue;
    }
    MMR_CHECK_MSG(!doc.has_summary, "sketch event after the summary line");
    if (type == "sketch") {
      check_sketch_event(v, line_no);
    } else if (type == "window") {
      check_window_event(v, line_no);
    } else {
      MMR_CHECK_MSG(type == "hot" || type == "slo",
                    "unknown sketch event type '" + type + "' on line " +
                        std::to_string(line_no));
    }
    doc.events.push_back(std::move(v));
  }
  MMR_CHECK_MSG(have_header, "sketch document has no header line");
  MMR_CHECK_MSG(doc.has_summary, "sketch document has no summary line");
  MMR_CHECK_MSG(doc.declared_events == doc.events.size(),
                "sketch summary declares " +
                    std::to_string(doc.declared_events) + " events but " +
                    std::to_string(doc.events.size()) + " are present");
  return doc;
}

SketchDoc read_sketch_file(const std::string& path) {
  std::ifstream is(path);
  MMR_CHECK_MSG(is.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_sketch_jsonl(buffer.str());
}

}  // namespace mmr
