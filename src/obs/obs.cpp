#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <tuple>

#include "util/memacct.h"
#include "util/metrics.h"

namespace mmr {

namespace {

std::atomic<bool> g_obs_enabled{false};

std::mutex& config_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

ObsConfig& mutable_config() {
  static ObsConfig* cfg = new ObsConfig();
  return *cfg;
}

}  // namespace

bool obs_enabled() {
  return g_obs_enabled.load(std::memory_order_relaxed);
}

void set_obs_enabled(bool enabled) {
  g_obs_enabled.store(enabled, std::memory_order_relaxed);
}

ObsConfig obs_config() {
  std::lock_guard<std::mutex> lock(config_mutex());
  return mutable_config();
}

void set_obs_config(const ObsConfig& config) {
  std::lock_guard<std::mutex> lock(config_mutex());
  mutable_config() = config;
}

ObsShard::ObsShard(const ObsConfig& config)
    : response(config.alpha, config.max_buckets),
      stretch(config.alpha, config.max_buckets),
      hot(config.hot_capacity),
      windows(config.window_s, config.slo, config.alpha,
              config.window_buckets) {}

void ObsShard::observe(PageId page, ServerId server, double t,
                       double response_s, double stretch_x,
                       double miss_cost_s) {
  ++requests;
  // The response value feeds two same-alpha sketches (the shard-global one
  // and the window cell's), so compute its log-bucket index once.
  const std::int32_t idx = response_s <= QuantileSketch::kMinTrackable
                               ? 0
                               : response.bucket_index(response_s);
  response.add_indexed(response_s, idx);
  stretch.add(stretch_x);
  hot.add(pack_hot_key(page, server), miss_cost_s);
  windows.observe_indexed(t, response_s, idx, stretch_x);
}

void ObsShard::merge(const ObsShard& other) {
  requests += other.requests;
  response.merge(other.response);
  stretch.merge(other.stretch);
  hot.merge(other.hot);
  windows.merge(other.windows);
}

std::size_t ObsShard::approx_bytes() const {
  return sizeof(*this) + policy.capacity() + response.approx_bytes() +
         stretch.approx_bytes() + hot.approx_bytes() +
         windows.approx_bytes();
}

struct ObsLog::Impl {
  mutable std::mutex mutex;
  std::vector<ObsShard> shards;
  std::uint64_t dropped = 0;
  std::uint64_t held_bytes = 0;
  std::size_t max_shards = 100000;
};

ObsLog::Impl& ObsLog::impl() const {
  // Leaked on purpose: the global log must outlive static destructors.
  static Impl* impl = new Impl();
  return *impl;
}

void ObsLog::add(ObsShard&& shard) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  if (i.shards.size() >= i.max_shards) {
    ++i.dropped;
    return;
  }
  const std::size_t bytes = shard.approx_bytes();
  memacct::charge(memacct::Category::kObsSketches, bytes);
  i.held_bytes += bytes;
  i.shards.push_back(std::move(shard));
}

void ObsLog::clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  memacct::release(memacct::Category::kObsSketches, i.held_bytes);
  i.held_bytes = 0;
  i.shards.clear();
  i.dropped = 0;
}

std::size_t ObsLog::size() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.shards.size();
}

std::uint64_t ObsLog::dropped() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.dropped;
}

void ObsLog::set_max_shards(std::size_t max_shards) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.max_shards = max_shards;
}

std::vector<ObsShard> ObsLog::snapshot() const {
  Impl& i = impl();
  std::vector<ObsShard> shards;
  {
    std::lock_guard<std::mutex> lock(i.mutex);
    shards = i.shards;
  }
  std::stable_sort(shards.begin(), shards.end(),
                   [](const ObsShard& a, const ObsShard& b) {
                     return std::tie(a.policy, a.mode, a.run) <
                            std::tie(b.policy, b.mode, b.run);
                   });
  std::vector<ObsShard> groups;
  for (ObsShard& shard : shards) {
    if (!groups.empty() && groups.back().policy == shard.policy &&
        groups.back().mode == shard.mode) {
      groups.back().merge(shard);
    } else {
      groups.push_back(std::move(shard));
    }
  }
  return groups;
}

ObsLog& global_obs_log() {
  static ObsLog* log = new ObsLog();
  return *log;
}

bool merge_obs_groups(const std::vector<ObsShard>& groups,
                      QuantileSketch* response_out,
                      QuantileSketch* stretch_out) {
  bool any = false;
  for (const ObsShard& g : groups) {
    if (g.requests == 0) continue;
    if (!any) {
      *response_out = g.response;
      *stretch_out = g.stretch;
      any = true;
    } else {
      response_out->merge(g.response);
      stretch_out->merge(g.stretch);
    }
  }
  return any;
}

void set_obs_gauges() {
  const std::vector<ObsShard> groups = global_obs_log().snapshot();
  const ObsConfig cfg = obs_config();
  QuantileSketch response(cfg.alpha, cfg.max_buckets);
  QuantileSketch stretch(cfg.alpha, cfg.max_buckets);
  if (!merge_obs_groups(groups, &response, &stretch)) return;
  MMR_GAUGE("obs.requests", static_cast<double>(response.count()));
  MMR_GAUGE("obs.response_p50", response.quantile(0.50));
  MMR_GAUGE("obs.response_p95", response.quantile(0.95));
  MMR_GAUGE("obs.response_p99", response.quantile(0.99));
  MMR_GAUGE("obs.response_p999", response.quantile(0.999));
  MMR_GAUGE("obs.stretch_p50", stretch.quantile(0.50));
  MMR_GAUGE("obs.stretch_p95", stretch.quantile(0.95));
  MMR_GAUGE("obs.stretch_p99", stretch.quantile(0.99));
  MMR_GAUGE("obs.stretch_p999", stretch.quantile(0.999));
}

}  // namespace mmr
