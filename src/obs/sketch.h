// DDSketch-style quantile sketch with a fixed relative-error guarantee.
//
// Values are mapped to logarithmic buckets: bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1 + alpha) / (1 - alpha), so the
// bucket midpoint 2 * gamma^i / (gamma + 1) is within a factor (1 + alpha)
// of every value in the bucket. Any quantile read off the sketch is
// therefore within relative error alpha of the exact sample quantile —
// independent of how many values were ingested.
//
// The sketch is bounded: when the bucket span would exceed `max_buckets`,
// the LOWEST buckets are collapsed into one. The tail (high quantiles) is
// the product here, so accuracy is sacrificed at the bottom, never at the
// top. Merging two sketches with identical (alpha, max_buckets) is exact
// and associative: bucket counts add, then the same collapse rule applies.
// Per-shard sketches merged in a fixed order therefore carry the same
// bucket table as a single sequential sketch — every quantile agrees to
// the last bit (only sum() can differ, by floating-point addition order)
// — which is the property the mmr-sketch artifact relies on for
// thread-count-independent bytes.
//
// Non-positive and sub-resolution values (x <= kMinTrackable) land in a
// dedicated zero bucket and report as `min()` in quantile reads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace mmr {

class QuantileSketch {
 public:
  /// Values at or below this threshold are counted in the zero bucket.
  static constexpr double kMinTrackable = 1e-9;

  explicit QuantileSketch(double alpha = 0.01, std::uint32_t max_buckets = 2048);

  /// Ingests `n` occurrences of value `x`. O(1) amortized. Inline so the
  /// common case — a bucket already inside the sketch's span — folds into
  /// the per-request caller.
  void add(double x, std::uint64_t n = 1) {
    if (n == 0) return;
    if (note(x, n)) bump(bucket_index(x), n);
  }

  /// Log-bucket index of `x`; only meaningful for x > kMinTrackable. The
  /// mapping depends on alpha alone, so the result is transferable to any
  /// same-alpha sketch via add_indexed().
  std::int32_t bucket_index(double x) const {
    return static_cast<std::int32_t>(
        std::ceil(std::log(x) * inv_log_gamma_));
  }

  /// add() with the bucket index precomputed by the caller — hot paths
  /// feeding one value to several same-alpha sketches pay for a single
  /// log(). `index` must equal bucket_index(x); it is ignored when `x`
  /// lands in the zero bucket.
  void add_indexed(double x, std::int32_t index, std::uint64_t n = 1) {
    if (n == 0) return;
    if (note(x, n)) bump(index, n);
  }

  /// Exact associative merge. Requires identical (alpha, max_buckets);
  /// checked.
  void merge(const QuantileSketch& other);

  /// Value at quantile q in [0, 1], within relative error alpha of the
  /// exact sample quantile (clamped to [min(), max()]). Checks !empty().
  double quantile(double q) const;

  bool empty() const { return total_ == 0; }
  std::uint64_t count() const { return total_; }
  std::uint64_t zero_count() const { return zero_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return total_ == 0 ? 0.0 : sum_ / total_; }

  double alpha() const { return alpha_; }
  double gamma() const { return gamma_; }
  std::uint32_t max_buckets() const { return max_buckets_; }

  /// Times the low-end collapse rule has folded buckets away. Nonzero
  /// means quantiles below the collapse point are upper bounds only.
  std::uint64_t collapses() const { return collapses_; }

  /// Occupied buckets as (log-index, count) pairs in ascending index
  /// order, for serialization. Zero-count slots are skipped.
  std::vector<std::pair<std::int32_t, std::uint64_t>> buckets() const;

  /// Re-inserts a serialized bucket; used by the artifact parser to
  /// rebuild a sketch and by tests to cross-check round trips.
  void add_bucket(std::int32_t index, std::uint64_t count);

  /// Approximate heap footprint, for memory accounting.
  std::size_t approx_bytes() const;

  bool operator==(const QuantileSketch& other) const;

 private:
  /// Updates min/max/total/sum for `n` copies of `x`; returns false when
  /// the value lands in the zero bucket (no log-bucket update needed).
  bool note(double x, std::uint64_t n) {
    MMR_CHECK_MSG(std::isfinite(x), "sketch values must be finite");
    if (total_ == 0) {
      min_ = x;
      max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    total_ += n;
    sum_ += x * static_cast<double>(n);
    if (x <= kMinTrackable) {
      zero_ += n;
      return false;
    }
    return true;
  }

  /// Counts `n` into log-bucket `index`, growing/collapsing out of line
  /// only when the index falls outside the current span.
  void bump(std::int32_t index, std::uint64_t n) {
    const std::size_t pos = static_cast<std::size_t>(
        static_cast<std::int64_t>(index) - offset_);
    if (pos < counts_.size()) {
      counts_[pos] += n;
    } else {
      slot(index) += n;
    }
  }

  std::uint64_t& slot(std::int32_t index);
  double bucket_value(std::int32_t index) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint32_t max_buckets_;

  /// counts_[k] is the count for log-index offset_ + k.
  std::vector<std::uint64_t> counts_;
  std::int32_t offset_ = 0;

  std::uint64_t zero_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t collapses_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mmr
