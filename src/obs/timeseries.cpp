#include "obs/timeseries.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <sstream>
#include <tuple>

#include "util/check.h"
#include "util/memacct.h"

namespace mmr {

namespace {

std::atomic<bool> g_timeseries_enabled{false};

std::mutex& config_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

TimeseriesConfig& mutable_config() {
  static TimeseriesConfig* cfg = new TimeseriesConfig();
  return *cfg;
}

}  // namespace

bool timeseries_enabled() {
  return g_timeseries_enabled.load(std::memory_order_relaxed);
}

void set_timeseries_enabled(bool enabled) {
  g_timeseries_enabled.store(enabled, std::memory_order_relaxed);
}

TimeseriesConfig timeseries_config() {
  std::lock_guard<std::mutex> lock(config_mutex());
  return mutable_config();
}

void set_timeseries_config(const TimeseriesConfig& config) {
  MMR_CHECK_MSG(config.window_s > 0, "timeseries window_s must be > 0");
  MMR_CHECK_MSG(config.max_windows == 0 || config.max_windows >= 2,
                "timeseries max_windows must be 0 (unlimited) or >= 2");
  std::lock_guard<std::mutex> lock(config_mutex());
  mutable_config() = config;
}

StationSeries& StationSeries::operator=(const StationSeries& other) {
  if (this == &other) return *this;
  window_s_ = other.window_s_;
  inv_window_s_ = other.inv_window_s_;
  max_windows_ = other.max_windows_;
  cells_ = other.cells_;
  busy_tail_ = other.busy_tail_;
  busy_cover_ = other.busy_cover_;
  hot_index_ = 0;
  hot_ = nullptr;  // would dangle into other.cells_
  last_t_ = other.last_t_;
  prev_occupancy_ = other.prev_occupancy_;
  arrivals = other.arrivals;
  served = other.served;
  redirected = other.redirected;
  rejected = other.rejected;
  admitted = other.admitted;
  occupancy_area_s = other.occupancy_area_s;
  time_in_station_s = other.time_in_station_s;
  busy_spread_s = other.busy_spread_s;
  time_violations = other.time_violations;
  return *this;
}

void StationSeries::materialize() const {
  if (busy_tail_.empty()) return;
  std::int64_t covering = 0;
  for (std::size_t w = 0; w < busy_tail_.size(); ++w) {
    covering += busy_cover_[w];
    const double add =
        busy_tail_[w] +
        (covering > 0 ? static_cast<double>(covering) * window_s_ : 0.0);
    if (add > 0) cells_[w].busy_s += add;
  }
  // The ±1 coverage deltas pair up inside the scratch extent, so coverage
  // returns to zero and no busy time extends past it.
  busy_tail_.clear();
  busy_cover_.clear();
  hot_index_ = 0;
  hot_ = nullptr;  // cells_[] may have rebalanced the map
}

void StationSeries::fold_once() {
  materialize();
  std::map<std::uint64_t, TsCell> folded;
  for (const auto& [index, c] : cells_) {
    TsCell& f = folded[index >> 1];
    f.arrivals += c.arrivals;
    f.served += c.served;
    f.redirected += c.redirected;
    f.rejected += c.rejected;
    f.depth_samples += c.depth_samples;
    f.depth_sum += c.depth_sum;
    f.depth_max = std::max(f.depth_max, c.depth_max);
    f.inflight_max = std::max(f.inflight_max, c.inflight_max);
    f.busy_s += c.busy_s;
  }
  cells_.swap(folded);
  window_s_ *= 2;
  inv_window_s_ = 1.0 / window_s_;
  hot_index_ = 0;
  hot_ = nullptr;  // pointed into the old map
}

void StationSeries::merge(const StationSeries& other) {
  materialize();
  other.materialize();
  // Coarsen the finer side to the coarser width; both widths grew from the
  // same base by doubling, so anything but a power-of-two ratio is a
  // config mismatch.
  while (window_s_ < other.window_s_) fold_once();
  std::uint64_t shift = 0;
  double w = other.window_s_;
  while (w < window_s_) {
    w *= 2;
    ++shift;
  }
  MMR_CHECK_MSG(w == window_s_,
                "cannot merge station series with different window widths");
  for (const auto& [index, c] : other.cells_) {
    TsCell& mine = cells_[index >> shift];
    mine.arrivals += c.arrivals;
    mine.served += c.served;
    mine.redirected += c.redirected;
    mine.rejected += c.rejected;
    mine.depth_samples += c.depth_samples;
    mine.depth_sum += c.depth_sum;
    mine.depth_max = std::max(mine.depth_max, c.depth_max);
    mine.inflight_max = std::max(mine.inflight_max, c.inflight_max);
    mine.busy_s += c.busy_s;
  }
  hot_index_ = 0;
  hot_ = nullptr;  // cells_[] may have rebalanced the map
  if (max_windows_ > 0) {
    while (!cells_.empty() && cells_.rbegin()->first >= max_windows_) {
      fold_once();
    }
  }
  arrivals += other.arrivals;
  served += other.served;
  redirected += other.redirected;
  rejected += other.rejected;
  admitted += other.admitted;
  occupancy_area_s += other.occupancy_area_s;
  time_in_station_s += other.time_in_station_s;
  busy_spread_s += other.busy_spread_s;
  time_violations += other.time_violations;
  if (other.last_t_ > last_t_) last_t_ = other.last_t_;
}

std::size_t StationSeries::approx_bytes() const {
  // Red-black nodes carry three pointers + color alongside the payload.
  return sizeof(*this) +
         cells_.size() * (sizeof(std::uint64_t) + sizeof(TsCell) +
                          4 * sizeof(void*)) +
         busy_tail_.capacity() * sizeof(double) +
         busy_cover_.capacity() * sizeof(std::int64_t);
}

TimeseriesShard::TimeseriesShard(const TimeseriesConfig& config,
                                 std::uint32_t num_servers)
    : window_s(config.window_s), stations(num_servers + 1) {
  for (StationSeries& s : stations) {
    s.reset(config.window_s, config.max_windows);
  }
}

void TimeseriesShard::merge(const TimeseriesShard& other) {
  MMR_CHECK_MSG(stations.size() == other.stations.size(),
                "cannot merge timeseries shards with different station "
                "counts");
  for (std::size_t i = 0; i < stations.size(); ++i) {
    stations[i].merge(other.stations[i]);
  }
  runs += other.runs;
  horizon_s += other.horizon_s;
  des_arrivals += other.des_arrivals;
  des_completions += other.des_completions;
  des_rejects += other.des_rejects;
  des_redirects += other.des_redirects;
  des_server_busy_s += other.des_server_busy_s;
  des_repo_busy_s += other.des_repo_busy_s;
  server_concurrency = std::max(server_concurrency, other.server_concurrency);
  repo_concurrency = std::max(repo_concurrency, other.repo_concurrency);
}

std::size_t TimeseriesShard::approx_bytes() const {
  std::size_t bytes = sizeof(*this) + policy.capacity();
  for (const StationSeries& s : stations) bytes += s.approx_bytes();
  return bytes;
}

struct TimeseriesLog::Impl {
  mutable std::mutex mutex;
  std::vector<TimeseriesShard> shards;
  std::uint64_t dropped = 0;
  std::uint64_t held_bytes = 0;
  std::size_t max_shards = 100000;
};

TimeseriesLog::Impl& TimeseriesLog::impl() const {
  // Leaked on purpose: the global log must outlive static destructors.
  static Impl* impl = new Impl();
  return *impl;
}

void TimeseriesLog::add(TimeseriesShard&& shard) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  if (i.shards.size() >= i.max_shards) {
    ++i.dropped;
    return;
  }
  const std::size_t bytes = shard.approx_bytes();
  memacct::charge(memacct::Category::kObsTimeseries, bytes);
  i.held_bytes += bytes;
  i.shards.push_back(std::move(shard));
}

void TimeseriesLog::clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  memacct::release(memacct::Category::kObsTimeseries, i.held_bytes);
  i.held_bytes = 0;
  i.shards.clear();
  i.dropped = 0;
}

std::size_t TimeseriesLog::size() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.shards.size();
}

std::uint64_t TimeseriesLog::dropped() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.dropped;
}

void TimeseriesLog::set_max_shards(std::size_t max_shards) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.max_shards = max_shards;
}

std::vector<TimeseriesShard> TimeseriesLog::snapshot() const {
  Impl& i = impl();
  std::vector<TimeseriesShard> shards;
  {
    std::lock_guard<std::mutex> lock(i.mutex);
    shards = i.shards;
  }
  std::stable_sort(shards.begin(), shards.end(),
                   [](const TimeseriesShard& a, const TimeseriesShard& b) {
                     return std::tie(a.policy, a.mode, a.run) <
                            std::tie(b.policy, b.mode, b.run);
                   });
  std::vector<TimeseriesShard> groups;
  for (TimeseriesShard& shard : shards) {
    if (!groups.empty() && groups.back().policy == shard.policy &&
        groups.back().mode == shard.mode) {
      groups.back().merge(shard);
    } else {
      groups.push_back(std::move(shard));
    }
  }
  return groups;
}

TimeseriesLog& global_timeseries_log() {
  static TimeseriesLog* log = new TimeseriesLog();
  return *log;
}

// ---------------------------------------------------------------------------
// Writer.

namespace {

void write_ts_header(std::ostream& os, const TimeseriesConfig& config,
                     const RunMeta& meta) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "mmr-timeseries");
  w.kv("version", std::int64_t{1});
  w.kv("window_s", config.window_s);
  w.kv("max_windows", config.max_windows);
  w.key("run_meta").begin_object();
  w.kv("tool", meta.tool);
  w.kv("git_describe", build_git_describe());
  for (const auto& [key, raw] : meta.fields) w.key(key).raw(raw);
  w.end_object();
  w.end_object();
  os << '\n';
}

void write_ts_prefix(JsonWriter& w, const char* type,
                     const TimeseriesShard& group) {
  w.kv("type", type);
  w.kv("policy", group.policy);
  w.kv("mode", flight_mode_name(group.mode));
}

std::int32_t station_id(const TimeseriesShard& group, std::size_t index) {
  return index + 1 == group.stations.size()
             ? kRepositoryStation
             : static_cast<std::int32_t>(index);
}

std::uint64_t write_series_line(std::ostream& os,
                                const TimeseriesShard& group) {
  JsonWriter w(os);
  w.begin_object();
  write_ts_prefix(w, "series", group);
  w.kv("runs", group.runs);
  w.kv("stations", static_cast<std::uint64_t>(group.stations.size()));
  w.kv("server_concurrency",
       static_cast<std::uint64_t>(group.server_concurrency));
  w.kv("repo_concurrency", static_cast<std::uint64_t>(group.repo_concurrency));
  w.kv("horizon_s", group.horizon_s);
  w.kv("arrivals", group.des_arrivals);
  w.kv("completions", group.des_completions);
  w.kv("rejects", group.des_rejects);
  w.kv("redirects", group.des_redirects);
  w.kv("server_busy_s", group.des_server_busy_s);
  w.kv("repo_busy_s", group.des_repo_busy_s);
  w.end_object();
  os << '\n';
  return 1;
}

std::uint64_t write_station_line(std::ostream& os,
                                 const TimeseriesShard& group,
                                 std::size_t index) {
  const StationSeries& s = group.stations[index];
  JsonWriter w(os);
  w.begin_object();
  write_ts_prefix(w, "station", group);
  w.kv("station", static_cast<std::int64_t>(station_id(group, index)));
  w.kv("window_s", s.window_s());
  w.kv("arrivals", s.arrivals);
  w.kv("served", s.served);
  w.kv("redirected", s.redirected);
  w.kv("rejected", s.rejected);
  w.kv("admitted", s.admitted);
  w.kv("busy_s", s.busy_spread_s);
  w.kv("time_in_station_s", s.time_in_station_s);
  w.kv("occupancy_area_s", s.occupancy_area_s);
  w.kv("time_violations", s.time_violations);
  w.end_object();
  os << '\n';
  return 1;
}

std::uint64_t write_window_lines(std::ostream& os,
                                 const TimeseriesShard& group,
                                 std::size_t index) {
  const StationSeries& s = group.stations[index];
  const std::uint32_t slots = index + 1 == group.stations.size()
                                  ? group.repo_concurrency
                                  : group.server_concurrency;
  // Station width, not the base: coarsened stations have wider windows.
  const double capacity = s.window_s() * static_cast<double>(slots) *
                          static_cast<double>(group.runs);
  for (const auto& [win, c] : s.cells()) {
    JsonWriter w(os);
    w.begin_object();
    write_ts_prefix(w, "window", group);
    w.kv("station", static_cast<std::int64_t>(station_id(group, index)));
    w.kv("window", win);
    w.kv("t_start_s", static_cast<double>(win) * s.window_s());
    w.kv("arrivals", c.arrivals);
    w.kv("served", c.served);
    w.kv("redirected", c.redirected);
    w.kv("rejected", c.rejected);
    w.kv("depth_max", static_cast<std::uint64_t>(c.depth_max));
    w.kv("depth_mean", c.depth_samples > 0
                           ? c.depth_sum / static_cast<double>(c.depth_samples)
                           : 0.0);
    w.kv("inflight_max", static_cast<std::uint64_t>(c.inflight_max));
    w.kv("busy_s", c.busy_s);
    w.kv("util", capacity > 0 ? c.busy_s / capacity : 0.0);
    w.end_object();
    os << '\n';
  }
  return s.cells().size();
}

void write_to_file(const std::string& path,
                   const std::function<void(std::ostream&)>& body) {
  std::ofstream os(path);
  MMR_CHECK_MSG(os.good(), "cannot open '" + path + "' for writing");
  body(os);
  os.flush();
  MMR_CHECK_MSG(os.good(), "write to '" + path + "' failed");
}

}  // namespace

void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<TimeseriesShard>& groups,
                            const TimeseriesConfig& config,
                            std::uint64_t dropped, const RunMeta& meta) {
  write_ts_header(os, config, meta);
  std::uint64_t events = 0;
  for (const TimeseriesShard& group : groups) {
    events += write_series_line(os, group);
    for (std::size_t i = 0; i < group.stations.size(); ++i) {
      events += write_station_line(os, group, i);
      events += write_window_lines(os, group, i);
    }
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("type", "summary");
  w.kv("events", events);
  w.kv("dropped", dropped);
  w.end_object();
  os << '\n';
}

void write_timeseries_file(const std::string& path, const TimeseriesLog& log,
                           const RunMeta& meta) {
  const std::vector<TimeseriesShard> groups = log.snapshot();
  const std::uint64_t dropped = log.dropped();
  write_to_file(path, [&](std::ostream& os) {
    write_timeseries_jsonl(os, groups, timeseries_config(), dropped, meta);
  });
}

// ---------------------------------------------------------------------------
// Parser.

std::vector<const JsonValue*> TimeseriesDoc::of_type(
    const std::string& type) const {
  std::vector<const JsonValue*> out;
  for (const JsonValue& e : events) {
    if (e.at("type").str_v == type) out.push_back(&e);
  }
  return out;
}

namespace {

/// Running totals of the window lines under the current station line,
/// checked against the station's own totals when the group closes.
struct StationTally {
  bool open = false;
  std::size_t line_no = 0;
  double station = 0;
  double window_s = 0;  ///< this station's (possibly coarsened) width
  std::string policy;
  std::string mode;
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t redirected = 0;
  std::uint64_t rejected = 0;
  double busy_s = 0;
  double declared_arrivals = 0;
  double declared_served = 0;
  double declared_redirected = 0;
  double declared_rejected = 0;
  double declared_busy_s = 0;
  bool have_window = false;
  double last_window = 0;
};

void require_fields(const JsonValue& v, std::size_t line_no, const char* what,
                    std::initializer_list<const char*> fields) {
  for (const char* field : fields) {
    MMR_CHECK_MSG(v.has(field), std::string(what) + " line " +
                                    std::to_string(line_no) + " lacks the '" +
                                    field + "' field");
  }
}

void close_station(const StationTally& tally) {
  if (!tally.open) return;
  const std::string where =
      "timeseries station line " + std::to_string(tally.line_no);
  MMR_CHECK_MSG(static_cast<double>(tally.arrivals) ==
                    tally.declared_arrivals,
                where + " declares " +
                    std::to_string(tally.declared_arrivals) +
                    " arrivals but its windows sum to " +
                    std::to_string(tally.arrivals));
  MMR_CHECK_MSG(static_cast<double>(tally.served) == tally.declared_served,
                where + " served total disagrees with its windows");
  MMR_CHECK_MSG(static_cast<double>(tally.redirected) ==
                    tally.declared_redirected,
                where + " redirected total disagrees with its windows");
  MMR_CHECK_MSG(static_cast<double>(tally.rejected) ==
                    tally.declared_rejected,
                where + " rejected total disagrees with its windows");
  const double tol = 1e-6 * std::max(1.0, tally.declared_busy_s);
  MMR_CHECK_MSG(std::abs(tally.busy_s - tally.declared_busy_s) <= tol,
                where + " busy_s disagrees with its windows");
}

}  // namespace

TimeseriesDoc parse_timeseries_jsonl(const std::string& text) {
  TimeseriesDoc doc;
  std::istringstream is(text);
  std::string line;
  bool have_header = false;
  std::size_t line_no = 0;
  StationTally tally;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue v = json_parse(line);
    MMR_CHECK_MSG(v.is_object(), "timeseries line " +
                                     std::to_string(line_no) +
                                     " is not a JSON object");
    if (!have_header) {
      MMR_CHECK_MSG(v.has("schema"),
                    "timeseries header line lacks a 'schema' field");
      doc.schema = v.at("schema").str_v;
      MMR_CHECK_MSG(doc.schema == "mmr-timeseries",
                    "unknown timeseries schema '" + doc.schema + "'");
      doc.version = static_cast<int>(v.at("version").num_v);
      MMR_CHECK_MSG(v.has("window_s"),
                    "timeseries header lacks the 'window_s' field");
      doc.window_s = v.at("window_s").num_v;
      MMR_CHECK_MSG(doc.window_s > 0, "timeseries window_s must be > 0");
      doc.header = std::move(v);
      have_header = true;
      continue;
    }
    MMR_CHECK_MSG(v.has("type"), "timeseries line " +
                                     std::to_string(line_no) +
                                     " lacks a 'type' field");
    const std::string& type = v.at("type").str_v;
    if (type == "summary") {
      MMR_CHECK_MSG(!doc.has_summary, "duplicate timeseries summary line");
      close_station(tally);
      tally.open = false;
      doc.has_summary = true;
      doc.declared_events = static_cast<std::uint64_t>(v.at("events").num_v);
      doc.declared_dropped =
          static_cast<std::uint64_t>(v.at("dropped").num_v);
      continue;
    }
    MMR_CHECK_MSG(!doc.has_summary,
                  "timeseries event after the summary line");
    if (type == "series") {
      require_fields(v, line_no, "timeseries series",
                     {"policy", "mode", "runs", "stations", "horizon_s",
                      "arrivals", "completions", "rejects", "redirects"});
      close_station(tally);
      tally.open = false;
    } else if (type == "station") {
      require_fields(v, line_no, "timeseries station",
                     {"policy", "mode", "station", "window_s", "arrivals",
                      "served", "redirected", "rejected", "admitted",
                      "busy_s", "time_in_station_s", "occupancy_area_s",
                      "time_violations"});
      close_station(tally);
      tally = StationTally{};
      tally.open = true;
      tally.line_no = line_no;
      tally.station = v.at("station").num_v;
      tally.window_s = v.at("window_s").num_v;
      // Coarsening only ever doubles, so a station width must be the base
      // width times a power of two.
      double base = doc.window_s;
      while (base < tally.window_s) base *= 2;
      MMR_CHECK_MSG(base == tally.window_s,
                    "timeseries station line " + std::to_string(line_no) +
                        " width is not a power-of-two multiple of the "
                        "header window_s");
      tally.policy = v.at("policy").str_v;
      tally.mode = v.at("mode").str_v;
      tally.declared_arrivals = v.at("arrivals").num_v;
      tally.declared_served = v.at("served").num_v;
      tally.declared_redirected = v.at("redirected").num_v;
      tally.declared_rejected = v.at("rejected").num_v;
      tally.declared_busy_s = v.at("busy_s").num_v;
    } else if (type == "window") {
      require_fields(v, line_no, "timeseries window",
                     {"policy", "mode", "station", "window", "t_start_s",
                      "arrivals", "served", "redirected", "rejected",
                      "depth_max", "depth_mean", "inflight_max", "busy_s",
                      "util"});
      const std::string where =
          "timeseries window line " + std::to_string(line_no);
      MMR_CHECK_MSG(tally.open && v.at("station").num_v == tally.station &&
                        v.at("policy").str_v == tally.policy &&
                        v.at("mode").str_v == tally.mode,
                    where + " does not follow its station line");
      const double win = v.at("window").num_v;
      MMR_CHECK_MSG(!tally.have_window || win > tally.last_window,
                    where + " is out of window order");
      tally.have_window = true;
      tally.last_window = win;
      MMR_CHECK_MSG(v.at("t_start_s").num_v == win * tally.window_s,
                    where + " t_start_s disagrees with its window index");
      MMR_CHECK_MSG(v.at("depth_mean").num_v <= v.at("depth_max").num_v,
                    where + " depth_mean exceeds depth_max");
      MMR_CHECK_MSG(v.at("busy_s").num_v >= 0 && v.at("util").num_v >= 0,
                    where + " has a negative busy/util value");
      tally.arrivals += static_cast<std::uint64_t>(v.at("arrivals").num_v);
      tally.served += static_cast<std::uint64_t>(v.at("served").num_v);
      tally.redirected +=
          static_cast<std::uint64_t>(v.at("redirected").num_v);
      tally.rejected += static_cast<std::uint64_t>(v.at("rejected").num_v);
      tally.busy_s += v.at("busy_s").num_v;
    } else {
      MMR_CHECK_MSG(false, "unknown timeseries event type '" + type +
                               "' on line " + std::to_string(line_no));
    }
    doc.events.push_back(std::move(v));
  }
  MMR_CHECK_MSG(have_header, "timeseries document has no header line");
  MMR_CHECK_MSG(doc.has_summary, "timeseries document has no summary line");
  MMR_CHECK_MSG(doc.declared_events == doc.events.size(),
                "timeseries summary declares " +
                    std::to_string(doc.declared_events) + " events but " +
                    std::to_string(doc.events.size()) + " are present");
  return doc;
}

TimeseriesDoc read_timeseries_file(const std::string& path) {
  std::ifstream is(path);
  MMR_CHECK_MSG(is.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_timeseries_jsonl(buffer.str());
}

}  // namespace mmr
