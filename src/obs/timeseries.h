// Queue-dynamics time series for the discrete-event simulator
// (docs/OBSERVABILITY.md "Watching the queues").
//
// The DES end-of-run aggregates (sim/des.h DesMetrics) say *how much*
// queueing happened; this module records *when and where*: per station
// (every site server plus the repository), virtual time is cut into fixed
// windows and each window accumulates queue-depth samples taken at event
// boundaries, busy time spread over the windows a service interval
// overlaps, in-flight high-water marks and arrival/served/redirected/
// rejected counts. Alongside the windows, each station keeps the exact
// conservation totals the invariant auditor (obs/invariants.h) needs:
// the occupancy time-integral ∫(queue + in-service) dt, the summed
// time-in-station of admitted jobs, and a virtual-time monotonicity
// violation count.
//
// Determinism follows the obs/sketch discipline: one TimeseriesShard per
// simulate call, tagged (run, policy, mode). Inside a shard every station
// is filled by exactly one deterministic event loop (phase A owns each
// server wholly; phase B fills the repository row sequentially), so no
// cross-thread merge ever happens mid-run; TimeseriesLog::snapshot() sorts
// shards canonically and merges per (policy, mode) group, making the
// mmr-timeseries artifact bytes identical at any shard × thread count.
// Everything is off by default (set_timeseries_enabled) and costs nothing
// when disabled.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/artifacts.h"
#include "io/provenance.h"
#include "util/json.h"

namespace mmr {

/// Master switch; the DES only collects while enabled.
bool timeseries_enabled();
void set_timeseries_enabled(bool enabled);

struct TimeseriesConfig {
  double window_s = 60.0;  ///< base (minimum) virtual-time window width [s]
  /// Per-station cell cap. When a station's virtual time outgrows
  /// max_windows cells, its window width doubles and adjacent cells fold
  /// pairwise (sums add, maxima max — exact, nothing is lost), so memory,
  /// artifact size and collection cost stay bounded no matter how long the
  /// simulated horizon runs. 0 disables coarsening (fixed window_s).
  std::uint64_t max_windows = 512;
};

/// Config applied to shards created AFTER the call; set it before enabling.
TimeseriesConfig timeseries_config();
void set_timeseries_config(const TimeseriesConfig& config);

/// Station id of the repository row in the artifact (site servers are their
/// ServerId); matches the audit headroom convention of serializing R as -1.
inline constexpr std::int32_t kRepositoryStation = -1;

/// One occupied virtual-time window of one station.
struct TsCell {
  std::uint64_t arrivals = 0;    ///< jobs offered in this window
  std::uint64_t served = 0;      ///< service completions in this window
  std::uint64_t redirected = 0;  ///< overflow → repository wholesale
  std::uint64_t rejected = 0;    ///< overflow → dropped
  std::uint64_t depth_samples = 0;
  double depth_sum = 0;          ///< Σ queue depth over the samples
  std::uint32_t depth_max = 0;
  std::uint32_t inflight_max = 0;  ///< max jobs in service
  double busy_s = 0;             ///< service time overlapping this window
};

/// One station's windowed series plus exact conservation totals. All
/// mutators must be called in nondecreasing virtual time (backwards steps
/// are tolerated and counted in time_violations — the auditor's monotone-
/// time law). The hot path caches the last-touched cell, so in-order event
/// streams hit the map only when they cross a window boundary.
///
/// Windows auto-coarsen: when an event lands at or past window
/// `max_windows`, the width doubles (cells fold pairwise) until it fits —
/// the HdrHistogram resize trick applied to time. Coarsening is a pure
/// function of the station's own event stream, so it cannot perturb the
/// artifact's byte-stability across shard/thread counts.
class StationSeries {
 public:
  StationSeries() = default;

  /// Copies drop the hot-cell cache: it points into the source's map.
  /// Moves keep it — map nodes transfer ownership without relocating.
  StationSeries(const StationSeries& other) { *this = other; }
  StationSeries& operator=(const StationSeries& other);
  StationSeries(StationSeries&&) = default;
  StationSeries& operator=(StationSeries&&) = default;

  void reset(double window_s, std::uint64_t max_windows = 0) {
    window_s_ = window_s > 0 ? window_s : 1.0;
    inv_window_s_ = 1.0 / window_s_;
    max_windows_ = max_windows;
    cells_.clear();
    busy_tail_.clear();
    busy_cover_.clear();
    hot_index_ = 0;
    hot_ = nullptr;
    arrivals = served = redirected = rejected = admitted = 0;
    occupancy_area_s = time_in_station_s = busy_spread_s = 0;
    time_violations = 0;
    last_t_ = 0;
    prev_occupancy_ = 0;
  }

  /// A job was offered to the station at time t (admitted or not).
  void on_arrival(double t) {
    ++cell(t).arrivals;
    ++arrivals;
  }
  void on_redirected(double t) {
    ++cell(t).redirected;
    ++redirected;
  }
  void on_rejected(double t) {
    ++cell(t).rejected;
    ++rejected;
  }
  /// One service completion at time t.
  void on_served(double t) {
    ++cell(t).served;
    ++served;
  }

  /// An admitted job entered service: `time_in_station` is its queue wait
  /// plus effective service — Little's law's per-job W contribution.
  void on_admitted(double time_in_station) {
    ++admitted;
    time_in_station_s += time_in_station;
  }

  /// Spreads one service interval [start, end) over the windows it overlaps
  /// (utilization numerator per window). O(1) no matter how many windows
  /// the interval spans: only the partial head window (usually the current,
  /// cache-hot cell) is charged immediately; the tail partial and the count
  /// of fully covered interiors land in flat per-window scratch vectors —
  /// plain array stores, no tree walk, no allocation — and are materialized
  /// into busy_s when the cells are read, folded or merged.
  void on_service(double start, double end) {
    if (end <= start) return;
    fit(end);
    const std::uint64_t w = window_of(start);
    spread_from(cell_at(w), w, start, end);
  }

  /// Depth sample at an event boundary; also advances the occupancy
  /// time-integral from the previous event. `queue_len` and `in_service`
  /// must partition the station's occupancy (for quasi-PS the caller splits
  /// total occupancy into the slot count and the excess).
  void sample(double t, std::uint32_t queue_len, std::uint32_t in_service) {
    sample_into(cell(t), t, queue_len, in_service);
  }

  // Fused per-event mutators. Each covers one whole DES event with a single
  // window lookup instead of one per granular call — on the event-loop hot
  // path the bucketing (double→index convert plus hot-cell check) costs as
  // much as the counter updates themselves, so collapsing an event's 2–4
  // granular calls into one roughly halves collection overhead. Every fused
  // call updates exactly the same fields as the granular sequence named in
  // its comment; the depth sample is last, matching the caller's
  // read-station-after-mutation order.

  /// on_arrival + sample (job offered and queued, or no slot taken).
  void on_arrival_sampled(double t, std::uint32_t queue_len,
                          std::uint32_t in_service) {
    TsCell& c = cell(t);
    ++c.arrivals;
    ++arrivals;
    sample_into(c, t, queue_len, in_service);
  }
  /// on_arrival + on_redirected + sample (overflow → repository).
  void on_arrival_redirected_sampled(double t, std::uint32_t queue_len,
                                     std::uint32_t in_service) {
    TsCell& c = cell(t);
    ++c.arrivals;
    ++arrivals;
    ++c.redirected;
    ++redirected;
    sample_into(c, t, queue_len, in_service);
  }
  /// on_arrival + on_rejected + sample (overflow → dropped).
  void on_arrival_rejected_sampled(double t, std::uint32_t queue_len,
                                   std::uint32_t in_service) {
    TsCell& c = cell(t);
    ++c.arrivals;
    ++arrivals;
    ++c.rejected;
    ++rejected;
    sample_into(c, t, queue_len, in_service);
  }
  /// on_arrival + on_admitted(done−t) + on_service(t, done) + sample: a job
  /// that started service the instant it arrived.
  void on_arrival_started_sampled(double t, double done,
                                  std::uint32_t queue_len,
                                  std::uint32_t in_service) {
    fit(done >= t ? done : t);
    const std::uint64_t w = window_of(t);
    TsCell& c = cell_at(w);
    ++c.arrivals;
    ++arrivals;
    ++admitted;
    time_in_station_s += done - t;
    if (done > t) spread_from(c, w, t, done);
    sample_into(c, t, queue_len, in_service);
  }
  /// on_admitted(wait + done−t) + on_service(t, done): a queued job popped
  /// into a freed slot at t (no sample — the caller samples after the whole
  /// completion event settles).
  void on_started(double t, double wait, double done) {
    ++admitted;
    time_in_station_s += wait + (done - t);
    if (done > t) {
      fit(done);
      const std::uint64_t w = window_of(t);
      spread_from(cell_at(w), w, t, done);
    }
  }
  /// on_served + sample (completion with no queued successor).
  void on_served_sampled(double t, std::uint32_t queue_len,
                         std::uint32_t in_service) {
    TsCell& c = cell(t);
    ++c.served;
    ++served;
    sample_into(c, t, queue_len, in_service);
  }
  /// on_admitted(wait + done−t) + on_service(t, done) + on_served + sample:
  /// a completion at t that hands the slot straight to a queued job.
  void on_complete_started_sampled(double t, double wait, double done,
                                   std::uint32_t queue_len,
                                   std::uint32_t in_service) {
    fit(done >= t ? done : t);
    const std::uint64_t w = window_of(t);
    TsCell& c = cell_at(w);
    ++admitted;
    time_in_station_s += wait + (done - t);
    if (done > t) spread_from(c, w, t, done);
    ++c.served;
    ++served;
    sample_into(c, t, queue_len, in_service);
  }

  /// Sums another station's series into this one. Widths may differ by a
  /// power of two (both grew from the same base by coarsening): the finer
  /// side folds to the coarser width first. Throws on any other ratio.
  void merge(const StationSeries& other);

  /// Current width: the reset() base doubled once per coarsening fold.
  double window_s() const { return window_s_; }
  std::uint64_t max_windows() const { return max_windows_; }
  double last_t() const { return last_t_; }
  /// Settles the pending busy difference map into busy_s first, so readers
  /// always see fully materialized cells.
  const std::map<std::uint64_t, TsCell>& cells() const {
    materialize();
    return cells_;
  }
  std::size_t approx_bytes() const;

  // Conservation totals (read by the auditor and the artifact writer).
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t redirected = 0;
  std::uint64_t rejected = 0;
  std::uint64_t admitted = 0;          ///< jobs that entered service
  double occupancy_area_s = 0;         ///< ∫ occupancy dt (Little's L·T)
  double time_in_station_s = 0;        ///< Σ per-job wait + service (λW·T)
  double busy_spread_s = 0;            ///< Σ intervals given to on_service
  std::uint64_t time_violations = 0;   ///< backwards virtual-time steps

 private:
  /// Multiply-by-inverse bucketing: one mul beats a divide on the per-event
  /// hot path, at the price of an occasional ±1 ulp disagreement with exact
  /// division right on a window boundary. Any consistent bucketing is
  /// correct — totals stay exact, only which side of a boundary an
  /// instant lands on can shift — and it is the same every run, so
  /// byte-stability is unaffected.
  std::uint64_t window_of(double t) const {
    return t <= 0 ? 0 : static_cast<std::uint64_t>(t * inv_window_s_);
  }
  /// Doubles the width until window_of(t) fits under max_windows_.
  void fit(double t) {
    if (max_windows_ == 0) return;
    while (window_of(t) >= max_windows_) fold_once();
  }
  void fold_once();
  /// Flushes the busy scratch vectors: each window gains its deferred tail
  /// partial plus covering-count × window_s_ of busy time. O(scratch size),
  /// and a no-op when nothing is pending. Logically const — it only settles
  /// deferred bookkeeping — hence the mutable members below.
  void materialize() const;
  /// Core of sample(): the occupancy integral plus depth stats into an
  /// already-located cell.
  void sample_into(TsCell& c, double t, std::uint32_t queue_len,
                   std::uint32_t in_service) {
    if (t < last_t_) {
      ++time_violations;
    } else {
      occupancy_area_s += (t - last_t_) * static_cast<double>(prev_occupancy_);
      last_t_ = t;
    }
    prev_occupancy_ = queue_len + in_service;
    ++c.depth_samples;
    c.depth_sum += queue_len;
    if (queue_len > c.depth_max) c.depth_max = queue_len;
    if (in_service > c.inflight_max) c.inflight_max = in_service;
  }
  /// Core of on_service(): spread [start, end) given the head cell `c` for
  /// window w = window_of(start). Requires end > start and fit(end) done.
  void spread_from(TsCell& c, std::uint64_t w, double start, double end) {
    busy_spread_s += end - start;
    const std::uint64_t w_end = window_of(end);
    if (w == w_end) {
      c.busy_s += end - start;
      return;
    }
    c.busy_s += static_cast<double>(w + 1) * window_s_ - start;
    ensure_busy_scratch(w_end);
    // An interval ending exactly on a boundary leaves nothing for the
    // trailing window; materialize() skips zero entries so no empty cell
    // appears for it.
    busy_tail_[w_end] += end - static_cast<double>(w_end) * window_s_;
    if (w_end > w + 1) {
      ++busy_cover_[w + 1];
      --busy_cover_[w_end];
    }
  }
  /// Grows the scratch vectors (geometrically, clamped to the cell cap) so
  /// index w is addressable. fit() has already bounded w below max_windows_.
  void ensure_busy_scratch(std::uint64_t w) {
    if (w < busy_tail_.size()) return;
    std::size_t n = std::max<std::size_t>(
        static_cast<std::size_t>(w) + 1, busy_tail_.size() * 2);
    if (max_windows_ != 0 && n > max_windows_) {
      n = static_cast<std::size_t>(max_windows_);
    }
    busy_tail_.resize(n, 0.0);
    busy_cover_.resize(n, 0);
  }
  TsCell& cell(double t) {
    std::uint64_t w = window_of(t);
    if (max_windows_ != 0 && w >= max_windows_) {
      fit(t);
      w = window_of(t);
    }
    return cell_at(w);
  }
  TsCell& cell_at(std::uint64_t w) {
    if (hot_ != nullptr && hot_index_ == w) return *hot_;
    hot_index_ = w;
    hot_ = &cells_[w];
    return *hot_;
  }

  double window_s_ = 60.0;
  double inv_window_s_ = 1.0 / 60.0;
  std::uint64_t max_windows_ = 0;  ///< cell cap; 0 = never coarsen
  mutable std::map<std::uint64_t, TsCell> cells_;
  /// Deferred busy time, indexed by window: tail partials of spread service
  /// intervals, and ±1 interior-coverage deltas (+1 at the first fully
  /// covered window, −1 one past the last; prefix-summed on materialize).
  mutable std::vector<double> busy_tail_;
  mutable std::vector<std::int64_t> busy_cover_;
  mutable std::uint64_t hot_index_ = 0;
  mutable TsCell* hot_ = nullptr;  ///< cache into cells_; dropped on copy
  double last_t_ = 0;
  std::uint32_t prev_occupancy_ = 0;
};

/// One DES simulate call's worth of queue dynamics: per-station series
/// (stations[0..n-1] are the site servers, stations[n] the repository) plus
/// the run-level flow totals the invariant auditor cross-checks.
struct TimeseriesShard {
  TimeseriesShard(const TimeseriesConfig& config, std::uint32_t num_servers);

  /// Site-server rows; the repository is the last element.
  StationSeries& server(std::uint32_t i) { return stations[i]; }
  StationSeries& repository() { return stations.back(); }
  const StationSeries& repository() const { return stations.back(); }
  std::uint32_t num_servers() const {
    return static_cast<std::uint32_t>(stations.size()) - 1;
  }

  /// Sums `other` into this shard (same station count and window width).
  void merge(const TimeseriesShard& other);
  std::size_t approx_bytes() const;

  std::uint64_t run = 0;    ///< provenance_run_or_zero() at creation
  std::string policy;       ///< current_metric_label() at creation
  FlightMode mode = FlightMode::kDes;
  double window_s = 60.0;  ///< configured base width; stations may coarsen
  std::uint64_t runs = 1;   ///< simulate calls merged into this shard
  std::uint32_t server_concurrency = 0;  ///< slots per site station
  std::uint32_t repo_concurrency = 0;
  double horizon_s = 0;     ///< Σ per-run horizons (utilization denominator)

  // Run-level DES totals (DesMetrics), for the flow-conservation law.
  std::uint64_t des_arrivals = 0;
  std::uint64_t des_completions = 0;
  std::uint64_t des_rejects = 0;
  std::uint64_t des_redirects = 0;
  double des_server_busy_s = 0;
  double des_repo_busy_s = 0;

  std::vector<StationSeries> stations;
};

/// Thread-safe shard sink; same add/snapshot contract as ObsLog. Held bytes
/// are charged to memacct's obs.timeseries category.
class TimeseriesLog {
 public:
  void add(TimeseriesShard&& shard);
  void clear();
  std::size_t size() const;
  std::uint64_t dropped() const;
  void set_max_shards(std::size_t max_shards);

  /// Shards sorted by (policy, mode, run) and merged per (policy, mode)
  /// group — the canonical order that makes artifact bytes independent of
  /// thread count. The returned shards' `run` is the group's smallest run.
  std::vector<TimeseriesShard> snapshot() const;

 private:
  struct Impl;
  Impl& impl() const;
};

TimeseriesLog& global_timeseries_log();

// ---------------------------------------------------------------------------
// mmr-timeseries artifact (schema in docs/FORMATS.md).

void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<TimeseriesShard>& groups,
                            const TimeseriesConfig& config,
                            std::uint64_t dropped, const RunMeta& meta);

/// Snapshots the global log and writes it; creates/truncates `path`.
void write_timeseries_file(const std::string& path, const TimeseriesLog& log,
                           const RunMeta& meta);

/// Parsed mmr-timeseries document. `events` holds every non-header,
/// non-summary line as raw JSON.
struct TimeseriesDoc {
  std::string schema;
  int version = 0;
  double window_s = 0;
  JsonValue header;
  std::vector<JsonValue> events;
  bool has_summary = false;
  std::uint64_t declared_events = 0;
  std::uint64_t declared_dropped = 0;

  /// Events of one type, in file order.
  std::vector<const JsonValue*> of_type(const std::string& type) const;
};

/// Strict parse: checks the schema name, known event types, per-station
/// window ordering, that each station's window counts sum to its totals
/// line, and the summary count. Throws CheckError on violation.
TimeseriesDoc parse_timeseries_jsonl(const std::string& text);
TimeseriesDoc read_timeseries_file(const std::string& path);

}  // namespace mmr
