// Windowed time-series aggregation and SLO evaluation.
//
// Requests are bucketed into fixed-width virtual-time windows; each window
// cell holds a small response-time sketch plus good/total counters, where
// "good" means the request met BOTH thresholds of the SLO (absolute
// response time and stretch relative to the unloaded ideal). The evaluator
// turns the cells into per-window attainment, the per-window p99
// trajectory, and multi-window burn rates in the style of SRE error-budget
// alerts: burn = (1 - attainment) / (1 - target), so burn 1.0 consumes the
// budget exactly at the sustainable rate and burn 10 means the window is
// failing ten times faster than the SLO allows.
//
// Cells merge exactly (sketch merge + counter adds), so per-shard
// aggregators combined in canonical order are byte-identical to a
// sequential run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/sketch.h"

namespace mmr {

struct SloConfig {
  double response_s = 2.0;  ///< absolute download-time threshold [s]
  double stretch_x = 1.5;   ///< max response / unloaded-ideal ratio
  double target = 0.99;     ///< attainment target in [0, 1)
};

/// Parses "RESP_S,STRETCH_X,TARGET" (e.g. "2.0,1.5,0.99"); ':' is also
/// accepted as a separator. Throws CheckError on malformed input.
SloConfig parse_slo_spec(const std::string& spec);

struct WindowCell {
  WindowCell(double alpha, std::uint32_t sketch_buckets)
      : response(alpha, sketch_buckets) {}
  QuantileSketch response;
  std::uint64_t good = 0;
  std::uint64_t total = 0;
};

struct SloWindowRow {
  std::uint64_t index = 0;   ///< window number (t / width)
  double t_start_s = 0.0;
  std::uint64_t total = 0;
  std::uint64_t good = 0;
  double attainment = 1.0;
  double burn = 0.0;
  double p99_s = 0.0;
};

struct SloReport {
  std::vector<SloWindowRow> windows;  ///< ascending index, occupied only
  std::uint64_t total = 0;
  std::uint64_t good = 0;
  double attainment = 1.0;
  double worst_burn_1 = 0.0;  ///< worst single-window burn rate
  double worst_burn_6 = 0.0;  ///< worst burn over any 6 consecutive windows
};

class WindowedAggregator {
 public:
  WindowedAggregator(double window_s, SloConfig slo, double alpha = 0.01,
                     std::uint32_t sketch_buckets = 512);

  /// Copies drop the hot-cell cache: it points into the source's map.
  /// Moves keep it — map nodes transfer ownership without relocating.
  WindowedAggregator(const WindowedAggregator& other);
  WindowedAggregator& operator=(const WindowedAggregator& other);
  WindowedAggregator(WindowedAggregator&&) = default;
  WindowedAggregator& operator=(WindowedAggregator&&) = default;

  void observe(double t, double response_s, double stretch_x);

  /// observe() with the response bucket index precomputed by a caller
  /// whose sketch shares this aggregator's alpha (see
  /// QuantileSketch::add_indexed).
  void observe_indexed(double t, double response_s,
                       std::int32_t response_index, double stretch_x);

  /// Exact merge; requires identical (window_s, slo, sketch resolution).
  void merge(const WindowedAggregator& other);

  SloReport evaluate() const;

  const std::map<std::uint64_t, WindowCell>& cells() const { return cells_; }
  double window_s() const { return window_s_; }
  const SloConfig& slo() const { return slo_; }
  std::uint64_t total() const { return total_; }

  std::size_t approx_bytes() const;

 private:
  WindowCell& cell_at(double t);

  double window_s_;
  SloConfig slo_;
  double alpha_;
  std::uint32_t sketch_buckets_;
  std::uint64_t total_ = 0;
  std::map<std::uint64_t, WindowCell> cells_;
  /// Most recently touched cell: virtual time is near-monotone per shard,
  /// so consecutive observations usually hit the same window and skip the
  /// map lookup. Valid only while it points into this object's cells_.
  std::uint64_t last_index_ = 0;
  WindowCell* last_cell_ = nullptr;
};

}  // namespace mmr
