#include "obs/invariants.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace mmr {

namespace {

/// |observed - expected| normalized by max(1, |expected|): relative error
/// for large quantities, absolute for counts near zero. The parser
/// recomputes this with the same expression, so round-tripped verdicts
/// reproduce exactly.
double check_error(double expected, double observed) {
  return std::abs(observed - expected) / std::max(1.0, std::abs(expected));
}

InvariantCheck make_check(const TimeseriesShard& group, const char* law,
                          double expected, double observed,
                          double tolerance) {
  InvariantCheck c;
  c.policy = group.policy;
  c.mode = group.mode;
  c.law = law;
  c.expected = expected;
  c.observed = observed;
  c.error = check_error(expected, observed);
  c.tolerance = tolerance;
  c.ok = c.error <= tolerance;
  return c;
}

InvariantCheck station_check(const TimeseriesShard& group,
                             std::int32_t station, const char* law,
                             double expected, double observed,
                             double tolerance) {
  InvariantCheck c = make_check(group, law, expected, observed, tolerance);
  c.per_station = true;
  c.station = station;
  return c;
}

}  // namespace

InvariantsReport audit_timeseries(const std::vector<TimeseriesShard>& groups,
                                  const InvariantTolerances& tol) {
  InvariantsReport report;
  for (const TimeseriesShard& group : groups) {
    for (std::size_t i = 0; i < group.stations.size(); ++i) {
      const StationSeries& s = group.stations[i];
      const std::int32_t id = i + 1 == group.stations.size()
                                  ? kRepositoryStation
                                  : static_cast<std::int32_t>(i);
      report.checks.push_back(station_check(
          group, id, "little", s.time_in_station_s, s.occupancy_area_s,
          tol.little_rel));
      report.checks.push_back(station_check(
          group, id, "flow", static_cast<double>(s.arrivals),
          static_cast<double>(s.admitted + s.redirected + s.rejected), 0.0));
      report.checks.push_back(station_check(
          group, id, "drain", static_cast<double>(s.admitted),
          static_cast<double>(s.served), 0.0));
      report.checks.push_back(station_check(
          group, id, "monotone_time", 0.0,
          static_cast<double>(s.time_violations), 0.0));
    }
    // Run-level flow: every page arrival either completes or is rejected.
    report.checks.push_back(make_check(
        group, "flow", static_cast<double>(group.des_arrivals),
        static_cast<double>(group.des_completions + group.des_rejects),
        0.0));
    // Busy-time vs utilization: the window-spread busy seconds and the
    // Stations' own busy_seconds() must describe the same utilization of
    // horizon × slots. (Optional fetches at remote stations are part of
    // both sides; the comparison is between the two measurement paths.)
    const std::uint32_t n = group.num_servers();
    double station_busy = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      station_busy += group.stations[i].busy_spread_s;
    }
    const double server_cap = group.horizon_s * static_cast<double>(n) *
                              static_cast<double>(group.server_concurrency);
    report.checks.push_back(make_check(
        group, "utilization_servers",
        server_cap > 0 ? group.des_server_busy_s / server_cap : 0.0,
        server_cap > 0 ? station_busy / server_cap : 0.0, tol.busy_rel));
    const double repo_cap =
        group.horizon_s * static_cast<double>(group.repo_concurrency);
    report.checks.push_back(make_check(
        group, "utilization_repo",
        repo_cap > 0 ? group.des_repo_busy_s / repo_cap : 0.0,
        repo_cap > 0 ? group.repository().busy_spread_s / repo_cap : 0.0,
        tol.busy_rel));
  }
  for (const InvariantCheck& c : report.checks) {
    if (!c.ok) ++report.violations;
  }
  return report;
}

// ---------------------------------------------------------------------------
// Writer.

namespace {

void write_inv_header(std::ostream& os, const InvariantTolerances& tol,
                      const RunMeta& meta) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "mmr-invariants");
  w.kv("version", std::int64_t{1});
  w.kv("little_rel", tol.little_rel);
  w.kv("busy_rel", tol.busy_rel);
  w.key("run_meta").begin_object();
  w.kv("tool", meta.tool);
  w.kv("git_describe", build_git_describe());
  for (const auto& [key, raw] : meta.fields) w.key(key).raw(raw);
  w.end_object();
  w.end_object();
  os << '\n';
}

void write_to_file(const std::string& path,
                   const std::function<void(std::ostream&)>& body) {
  std::ofstream os(path);
  MMR_CHECK_MSG(os.good(), "cannot open '" + path + "' for writing");
  body(os);
  os.flush();
  MMR_CHECK_MSG(os.good(), "write to '" + path + "' failed");
}

}  // namespace

void write_invariants_jsonl(std::ostream& os, const InvariantsReport& report,
                            const InvariantTolerances& tol,
                            const RunMeta& meta) {
  write_inv_header(os, tol, meta);
  for (const InvariantCheck& c : report.checks) {
    JsonWriter w(os);
    w.begin_object();
    w.kv("type", "check");
    w.kv("policy", c.policy);
    w.kv("mode", flight_mode_name(c.mode));
    w.kv("law", c.law);
    if (c.per_station) w.kv("station", static_cast<std::int64_t>(c.station));
    w.kv("expected", c.expected);
    w.kv("observed", c.observed);
    w.kv("error", c.error);
    w.kv("tolerance", c.tolerance);
    w.kv("ok", c.ok);
    w.end_object();
    os << '\n';
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("type", "summary");
  w.kv("events", static_cast<std::uint64_t>(report.checks.size()));
  w.kv("dropped", std::uint64_t{0});
  w.kv("violations", report.violations);
  w.kv("ok", report.all_ok());
  w.end_object();
  os << '\n';
}

void write_invariants_file(const std::string& path, const TimeseriesLog& log,
                           const RunMeta& meta,
                           const InvariantTolerances& tol) {
  const InvariantsReport report = audit_timeseries(log.snapshot(), tol);
  write_to_file(path, [&](std::ostream& os) {
    write_invariants_jsonl(os, report, tol, meta);
  });
}

// ---------------------------------------------------------------------------
// Parser.

InvariantsDoc parse_invariants_jsonl(const std::string& text) {
  InvariantsDoc doc;
  std::istringstream is(text);
  std::string line;
  bool have_header = false;
  std::size_t line_no = 0;
  std::uint64_t failed = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue v = json_parse(line);
    MMR_CHECK_MSG(v.is_object(), "invariants line " +
                                     std::to_string(line_no) +
                                     " is not a JSON object");
    if (!have_header) {
      MMR_CHECK_MSG(v.has("schema"),
                    "invariants header line lacks a 'schema' field");
      doc.schema = v.at("schema").str_v;
      MMR_CHECK_MSG(doc.schema == "mmr-invariants",
                    "unknown invariants schema '" + doc.schema + "'");
      doc.version = static_cast<int>(v.at("version").num_v);
      doc.header = std::move(v);
      have_header = true;
      continue;
    }
    MMR_CHECK_MSG(v.has("type"), "invariants line " +
                                     std::to_string(line_no) +
                                     " lacks a 'type' field");
    const std::string& type = v.at("type").str_v;
    if (type == "summary") {
      MMR_CHECK_MSG(!doc.has_summary, "duplicate invariants summary line");
      doc.has_summary = true;
      doc.declared_events = static_cast<std::uint64_t>(v.at("events").num_v);
      doc.declared_dropped =
          static_cast<std::uint64_t>(v.at("dropped").num_v);
      doc.declared_violations =
          static_cast<std::uint64_t>(v.at("violations").num_v);
      doc.declared_ok = v.at("ok").bool_v;
      continue;
    }
    MMR_CHECK_MSG(!doc.has_summary,
                  "invariants event after the summary line");
    MMR_CHECK_MSG(type == "check", "unknown invariants event type '" + type +
                                       "' on line " +
                                       std::to_string(line_no));
    const std::string where =
        "invariants check line " + std::to_string(line_no);
    for (const char* field : {"policy", "mode", "law", "expected",
                              "observed", "error", "tolerance", "ok"}) {
      MMR_CHECK_MSG(v.has(field),
                    where + " lacks the '" + field + "' field");
    }
    const double expected = v.at("expected").num_v;
    const double observed = v.at("observed").num_v;
    const double err = std::abs(observed - expected) /
                       std::max(1.0, std::abs(expected));
    MMR_CHECK_MSG(v.at("error").num_v == err,
                  where + " error disagrees with expected/observed");
    MMR_CHECK_MSG(v.at("ok").bool_v == (err <= v.at("tolerance").num_v),
                  where + " verdict disagrees with its error/tolerance");
    if (!v.at("ok").bool_v) ++failed;
    doc.checks.push_back(std::move(v));
  }
  MMR_CHECK_MSG(have_header, "invariants document has no header line");
  MMR_CHECK_MSG(doc.has_summary, "invariants document has no summary line");
  MMR_CHECK_MSG(doc.declared_events == doc.checks.size(),
                "invariants summary declares " +
                    std::to_string(doc.declared_events) + " events but " +
                    std::to_string(doc.checks.size()) + " are present");
  MMR_CHECK_MSG(doc.declared_violations == failed,
                "invariants summary declares " +
                    std::to_string(doc.declared_violations) +
                    " violations but " + std::to_string(failed) +
                    " check lines failed");
  MMR_CHECK_MSG(doc.declared_ok == (failed == 0),
                "invariants summary verdict disagrees with its checks");
  return doc;
}

InvariantsDoc read_invariants_file(const std::string& path) {
  std::ifstream is(path);
  MMR_CHECK_MSG(is.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_invariants_jsonl(buffer.str());
}

}  // namespace mmr
