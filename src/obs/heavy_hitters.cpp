#include "obs/heavy_hitters.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace mmr {

namespace {

// Eviction / ranking order: lower count first, then larger key, so the
// victim is the (min count, smallest key) entry and top() is its mirror.
bool weaker(const SpaceSavingTracker::Entry& a,
            const SpaceSavingTracker::Entry& b) {
  if (a.count != b.count) return a.count < b.count;
  return a.key < b.key;
}

}  // namespace

SpaceSavingTracker::SpaceSavingTracker(std::uint32_t capacity)
    : capacity_(capacity) {
  MMR_CHECK_MSG(capacity > 0, "heavy-hitter tracker needs capacity > 0");
  std::uint32_t table = 4;
  while (table < capacity_ * 4) table <<= 1;
  table_mask_ = table - 1;
  table_keys_.assign(table, 0);
  table_slots_.assign(table, kEmptySlot);
  slots_.reserve(capacity_);
  min_set_.reserve(capacity_);
}

std::uint32_t SpaceSavingTracker::find_table_pos(std::uint64_t key) const {
  std::uint32_t pos =
      static_cast<std::uint32_t>(hash_key(key)) & table_mask_;
  while (table_slots_[pos] != kEmptySlot && table_keys_[pos] != key) {
    pos = (pos + 1) & table_mask_;
  }
  return pos;  // either holds `key` or is the free cell to insert into
}

std::uint32_t SpaceSavingTracker::pop_victim(std::uint32_t* cell) {
  for (;;) {
    while (min_cursor_ < min_set_.size()) {
      const std::uint64_t key = min_set_[min_cursor_++];
      const std::uint32_t pos = find_table_pos(key);
      if (table_slots_[pos] == kEmptySlot) continue;
      const std::uint32_t slot = table_slots_[pos];
      // Still at the scanned minimum: counts never decrease, so the
      // smallest still-valid snapshot key is the global (min count,
      // smallest key) entry. A key whose count grew since the rescan is
      // stale — skip it.
      if (slots_[slot].count == min_scan_) {
        *cell = pos;
        return slot;
      }
    }
    // Snapshot exhausted — rescan. Every slot now sits at or above the old
    // minimum, so the new minimum is exact and the fresh snapshot serves
    // the next batch of evictions.
    min_scan_ = std::numeric_limits<std::uint64_t>::max();
    for (const Entry& e : slots_) min_scan_ = std::min(min_scan_, e.count);
    min_set_.clear();
    for (const Entry& e : slots_) {
      if (e.count == min_scan_) min_set_.push_back(e.key);
    }
    std::sort(min_set_.begin(), min_set_.end());
    min_cursor_ = 0;
  }
}

void SpaceSavingTracker::add_miss(std::uint64_t key, double weight,
                                  std::uint64_t n, std::uint32_t pos) {
  if (slots_.size() < capacity_) {
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Entry{key, n, 0, weight});
    table_keys_[pos] = key;
    table_slots_[pos] = slot;
    return;
  }
  // Evict the weakest monitored entry; the newcomer inherits its count as
  // the classic SpaceSaving overestimate. Insert the new key into the
  // free cell add()'s probe already found — still free, and removing the
  // victim's cell afterwards only ever shifts cells toward their home.
  std::uint32_t hole = 0;
  const std::uint32_t slot = pop_victim(&hole);
  Entry& e = slots_[slot];
  table_keys_[pos] = key;
  table_slots_[pos] = slot;
  // Backward-shift removal of the victim's key from the probe table.
  std::uint32_t next = (hole + 1) & table_mask_;
  while (table_slots_[next] != kEmptySlot) {
    const std::uint32_t home =
        static_cast<std::uint32_t>(hash_key(table_keys_[next])) &
        table_mask_;
    if (((next - home) & table_mask_) >= ((next - hole) & table_mask_)) {
      table_keys_[hole] = table_keys_[next];
      table_slots_[hole] = table_slots_[next];
      hole = next;
    }
    next = (next + 1) & table_mask_;
  }
  table_slots_[hole] = kEmptySlot;

  e = Entry{key, e.count + n, e.count, e.weight + weight};
}

std::uint64_t SpaceSavingTracker::min_count() const {
  if (slots_.size() < capacity_) return 0;
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  for (const Entry& e : slots_) lo = std::min(lo, e.count);
  return lo;
}

void SpaceSavingTracker::merge(const SpaceSavingTracker& other) {
  MMR_CHECK_MSG(capacity_ == other.capacity_,
                "cannot merge trackers with different capacity");
  const std::uint64_t floor_a = min_count();
  const std::uint64_t floor_b = other.min_count();

  std::vector<Entry> merged;
  merged.reserve(slots_.size() + other.slots_.size());
  for (const Entry& e : slots_) {
    Entry m = e;
    const std::uint32_t pos = other.find_table_pos(e.key);
    if (other.table_slots_[pos] != kEmptySlot) {
      const Entry& o = other.slots_[other.table_slots_[pos]];
      m.count += o.count;
      m.error += o.error;
      m.weight += o.weight;
    } else {
      m.count += floor_b;
      m.error += floor_b;
    }
    merged.push_back(m);
  }
  for (const Entry& e : other.slots_) {
    const std::uint32_t pos = find_table_pos(e.key);
    if (table_slots_[pos] != kEmptySlot) continue;  // already merged above
    Entry m = e;
    m.count += floor_a;
    m.error += floor_a;
    merged.push_back(m);
  }

  // Rank (count desc, key asc), truncate, and rebuild every structure in
  // that deterministic order.
  std::sort(merged.begin(), merged.end(),
            [](const Entry& a, const Entry& b) { return weaker(b, a); });
  if (merged.size() > capacity_) merged.resize(capacity_);
  total_ += other.total_;
  rebuild_from(std::move(merged));
}

void SpaceSavingTracker::rebuild_from(std::vector<Entry>&& ranked) {
  slots_ = std::move(ranked);
  std::fill(table_slots_.begin(), table_slots_.end(), kEmptySlot);
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const std::uint32_t pos = find_table_pos(slots_[i].key);
    table_keys_[pos] = slots_[i].key;
    table_slots_[pos] = i;
  }
  // Invalidate the min-set snapshot; the next eviction rescans.
  min_set_.clear();
  min_cursor_ = 0;
  min_scan_ = 0;
}

std::vector<SpaceSavingTracker::Entry> SpaceSavingTracker::top() const {
  std::vector<Entry> out = slots_;
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return weaker(b, a); });
  return out;
}

std::size_t SpaceSavingTracker::approx_bytes() const {
  return sizeof(*this) + slots_.capacity() * sizeof(Entry) +
         table_keys_.capacity() * sizeof(std::uint64_t) +
         table_slots_.capacity() * sizeof(std::uint32_t) +
         min_set_.capacity() * sizeof(std::uint64_t);
}

}  // namespace mmr
