// mmr-sketch JSONL artifact: serialization of the streaming-telemetry
// snapshot and the strict parser that validates it (docs/FORMATS.md
// "mmr-sketch").
//
// Layout: one header line (schema/version/config/run_meta), then per
// (policy, mode) group in canonical order: two "sketch" lines (response,
// stretch), the "hot" ranking, the occupied "window" rows, one "slo"
// summary line; finally the {"type":"summary"} trailer. Because groups
// come from ObsLog::snapshot(), the bytes are identical at any thread
// count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/artifacts.h"
#include "obs/obs.h"
#include "util/json.h"

namespace mmr {

void write_sketch_jsonl(std::ostream& os, const std::vector<ObsShard>& groups,
                        const ObsConfig& config, std::uint64_t dropped,
                        const RunMeta& meta);

/// Snapshots the global log and writes it; creates/truncates `path`.
void write_sketch_file(const std::string& path, const ObsLog& log,
                       const RunMeta& meta);

/// Parsed mmr-sketch document. `events` holds every non-header,
/// non-summary line as raw JSON.
struct SketchDoc {
  std::string schema;
  int version = 0;
  JsonValue header;
  std::vector<JsonValue> events;
  bool has_summary = false;
  std::uint64_t declared_events = 0;
  std::uint64_t declared_dropped = 0;

  /// Events of one type, in file order.
  std::vector<const JsonValue*> of_type(const std::string& type) const;
};

/// Strict parse: checks the schema name, known event types, per-sketch
/// bucket-count consistency (zero + sum of buckets == count), window
/// good <= total, and the summary count. Throws CheckError on violation.
SketchDoc parse_sketch_jsonl(const std::string& text);
SketchDoc read_sketch_file(const std::string& path);

}  // namespace mmr
