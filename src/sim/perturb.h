// Per-request network perturbation model (paper Sec. 5.1).
//
// Allocation decisions use the servers' *estimated* rates and overheads; the
// simulator perturbs them per request to test robustness:
//   local rate  — 60% of requests within ±10% of the estimate, 30% between
//                 1/3 and 1/2 of it, 10% between 1/6 and 1/4 (congestion),
//   repo rate   — within ±20%,
//   repo ovhd   — within ±20%,
//   local ovhd  — between -10% and +50%.
// `severity` scales every deviation band around 1.0 (ablation A5); 1.0 is
// the paper's setting, 0.0 disables perturbation entirely.
#pragma once

#include "model/entities.h"
#include "util/rng.h"

namespace mmr {

struct PerturbParams {
  // Local transfer-rate mixture: {probability, multiplier range}.
  double p_nominal = 0.60;
  double nominal_lo = 0.90, nominal_hi = 1.10;
  double p_degraded = 0.30;
  double degraded_lo = 1.0 / 3.0, degraded_hi = 1.0 / 2.0;
  // Remaining probability mass is the congestion class.
  double congested_lo = 1.0 / 6.0, congested_hi = 1.0 / 4.0;

  double repo_rate_lo = 0.80, repo_rate_hi = 1.20;
  double repo_ovhd_lo = 0.80, repo_ovhd_hi = 1.20;
  double local_ovhd_lo = 0.90, local_ovhd_hi = 1.50;

  /// Scales every band's deviation from 1.0; see header comment.
  double severity = 1.0;

  void validate() const;
};

/// Actual network conditions of one HTTP interaction.
struct NetworkSample {
  double local_rate = 0;  ///< bytes/sec
  double repo_rate = 0;   ///< bytes/sec
  double ovhd_local = 0;  ///< seconds
  double ovhd_repo = 0;   ///< seconds
};

/// Draws actual conditions for one request against a server's estimates.
NetworkSample perturb(const Server& estimates, const PerturbParams& params,
                      Rng& rng);

}  // namespace mmr
