#include "sim/runner.h"

#include <mutex>

#include "baselines/static_policies.h"
#include "util/check.h"
#include "workload/generator.h"

namespace mmr {

RunOutcome run_single(const ExperimentConfig& config, const ScenarioSpec& spec,
                      std::uint64_t seed) {
  // 1. Unconstrained instance: capacities wide open, storage at 100%.
  WorkloadParams wl = config.workload;
  wl.server_proc_capacity = kUnlimited;
  wl.repo_proc_capacity = kUnlimited;
  wl.storage_fraction = 1.0;
  SystemModel sys = generate_workload(wl, seed);

  // 2. Unconstrained solution (calibrates the "% capacity" axes).
  PolicyOptions unconstrained = config.policy;
  unconstrained.restore_storage_enabled = false;
  unconstrained.restore_processing_enabled = false;
  unconstrained.offload_enabled = false;
  PolicyResult unc = run_replication_policy(sys, unconstrained);

  // Capacity axes are calibrated against the all-local load ("100% of the
  // arriving requests") and the mandatory HTML-only load ("0%").
  const Assignment all_local = make_local_assignment(sys);
  std::vector<double> full_local_load(sys.num_servers());
  std::vector<double> mandatory_load(sys.num_servers());
  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    full_local_load[i] = all_local.server_proc_load(i);
    mandatory_load[i] = sys.page_request_rate(i);  // HTML requests only
  }
  // Figure-3 calibration: 100% repository capacity == the load the
  // unconstrained solution imposes on R (see runner.h).
  const double unconstrained_repo_load = unc.assignment.repo_proc_load();

  // 3. Apply the scenario.
  set_storage_fraction(sys, spec.storage_fraction);
  if (spec.local_proc_fraction) {
    std::vector<double> capacities(sys.num_servers());
    for (ServerId i = 0; i < sys.num_servers(); ++i) {
      capacities[i] = std::max(mandatory_load[i],
                               *spec.local_proc_fraction *
                                   full_local_load[i]);
      capacities[i] = std::max(capacities[i], 1e-9);
    }
    set_processing_capacities(sys, capacities);
  }
  if (spec.repo_capacity_fraction) {
    set_repo_capacity(sys, unconstrained_repo_load,
                      *spec.repo_capacity_fraction);
  }

  // Capacities changed but the unconstrained placement's decision bits are
  // still meaningful; its cached loads are capacity-independent, so the
  // simulation below can reuse it as the per-run baseline.

  // 4. Constrained policy + baselines.
  PolicyResult ours = run_replication_policy(sys, config.policy);

  // 5. Simulate everything on the same stream.
  Simulator simulator(sys, config.sim);
  const std::uint64_t sim_seed = mix_seed(seed, 0x5EED);

  RunOutcome out;
  out.unconstrained_response =
      simulator.simulate(unc.assignment, sim_seed).page_response.mean();
  out.ours_response =
      simulator.simulate(ours.assignment, sim_seed).page_response.mean();
  out.ours_objective =
      objective_total_cached(ours.assignment, config.policy.weights);
  out.ours_feasible = ours.feasible;
  if (spec.run_lru) {
    out.lru_response = simulator.simulate_lru(sim_seed).page_response.mean();
  }
  if (spec.run_local) {
    out.local_response =
        simulator.simulate(make_local_assignment(sys), sim_seed)
            .page_response.mean();
  }
  if (spec.run_remote) {
    out.remote_response =
        simulator.simulate(make_remote_assignment(sys), sim_seed)
            .page_response.mean();
  }
  return out;
}

ScenarioResult run_scenario(const ExperimentConfig& config,
                            const ScenarioSpec& spec, ThreadPool* pool) {
  MMR_CHECK_MSG(config.runs > 0, "need at least one run");
  ScenarioResult result;
  result.runs = config.runs;
  std::mutex mutex;

  auto one = [&](std::size_t r) {
    const std::uint64_t seed = mix_seed(config.base_seed, 1000 + r);
    const RunOutcome out = run_single(config, spec, seed);

    std::lock_guard<std::mutex> lock(mutex);
    const double base = out.unconstrained_response;
    result.unconstrained_response.add(base);
    result.policy_d.add(out.ours_objective);
    result.ours.mean_response.add(out.ours_response);
    result.ours.rel_increase.add(relative_increase(out.ours_response, base));
    if (spec.run_lru) {
      result.lru.mean_response.add(out.lru_response);
      result.lru.rel_increase.add(relative_increase(out.lru_response, base));
    }
    if (spec.run_local) {
      result.local.mean_response.add(out.local_response);
      result.local.rel_increase.add(
          relative_increase(out.local_response, base));
    }
    if (spec.run_remote) {
      result.remote.mean_response.add(out.remote_response);
      result.remote.rel_increase.add(
          relative_increase(out.remote_response, base));
    }
    if (!out.ours_feasible) ++result.infeasible_runs;
  };

  if (pool != nullptr) {
    pool->parallel_for(config.runs, one);
  } else {
    for (std::size_t r = 0; r < config.runs; ++r) one(r);
  }
  return result;
}

}  // namespace mmr
