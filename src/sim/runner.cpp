#include "sim/runner.h"

#include <mutex>
#include <optional>

#include "baselines/static_policies.h"
#include "io/provenance.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "workload/generator.h"

namespace mmr {

RunOutcome run_single(const ExperimentConfig& config, const ScenarioSpec& spec,
                      std::uint64_t seed) {
  TraceSpan run_span("run_single");
  if (run_span.active()) run_span.arg("seed", seed);
  // Provenance run tag: a direct caller gets the seed as its tag; under
  // run_scenario the scope installed in the worker lambda already names this
  // run, and nesting another scope here would shadow it.
  std::optional<ProvenanceRunScope> run_scope;
  if (current_provenance_run() == kProvenanceNoRun) run_scope.emplace(seed);
  // 1. Unconstrained instance: capacities wide open, storage at 100%.
  WorkloadParams wl = config.workload;
  wl.server_proc_capacity = kUnlimited;
  wl.repo_proc_capacity = kUnlimited;
  wl.storage_fraction = 1.0;
  SystemModel sys = generate_workload(wl, seed);

  // 2. Unconstrained solution (calibrates the "% capacity" axes).
  PolicyOptions unconstrained_options = config.policy;
  unconstrained_options.restore_storage_enabled = false;
  unconstrained_options.restore_processing_enabled = false;
  unconstrained_options.offload_enabled = false;
  PolicyResult unc = [&] {
    MetricLabelScope label("unconstrained");
    return run_replication_policy(sys, unconstrained_options);
  }();

  // Capacity axes are calibrated against the all-local load ("100% of the
  // arriving requests") and the mandatory HTML-only load ("0%").
  const Assignment all_local = make_local_assignment(sys);
  std::vector<double> full_local_load(sys.num_servers());
  std::vector<double> mandatory_load(sys.num_servers());
  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    full_local_load[i] = all_local.server_proc_load(i);
    mandatory_load[i] = sys.page_request_rate(i);  // HTML requests only
  }
  // Figure-3 calibration: 100% repository capacity == the load the
  // unconstrained solution imposes on R (see runner.h).
  const double unconstrained_repo_load = unc.assignment.repo_proc_load();

  // 3. Apply the scenario.
  set_storage_fraction(sys, spec.storage_fraction);
  if (spec.local_proc_fraction) {
    std::vector<double> capacities(sys.num_servers());
    for (ServerId i = 0; i < sys.num_servers(); ++i) {
      capacities[i] = std::max(mandatory_load[i],
                               *spec.local_proc_fraction *
                                   full_local_load[i]);
      capacities[i] = std::max(capacities[i], 1e-9);
    }
    set_processing_capacities(sys, capacities);
  }
  if (spec.repo_capacity_fraction) {
    set_repo_capacity(sys, unconstrained_repo_load,
                      *spec.repo_capacity_fraction);
  }

  // Capacities changed but the unconstrained placement's decision bits are
  // still meaningful; its cached loads are capacity-independent, so the
  // simulation below can reuse it as the per-run baseline.

  // 4. Constrained policy + baselines.
  PolicyResult ours = [&] {
    MetricLabelScope label("ours");
    return run_replication_policy(sys, config.policy);
  }();

  // 5. Simulate everything on the same stream. Each policy's simulation
  // runs under its label so per-policy instruments (response histograms)
  // stay distinguishable after the runner merges worker registries.
  Simulator simulator(sys, config.sim);
  const std::uint64_t sim_seed = mix_seed(seed, 0x5EED);

  RunOutcome out;
  {
    MetricLabelScope label("unconstrained");
    out.unconstrained_response =
        simulator.simulate(unc.assignment, sim_seed).page_response.mean();
  }
  {
    MetricLabelScope label("ours");
    out.ours_response =
        simulator.simulate(ours.assignment, sim_seed).page_response.mean();
  }
  out.ours_objective =
      objective_total_cached(ours.assignment, config.policy.weights);
  out.ours_feasible = ours.feasible;
  if (!out.ours_feasible) MMR_COUNT("runner.infeasible_runs", 1);
  if (spec.run_lru) {
    MetricLabelScope label("lru");
    out.lru_response = simulator.simulate_lru(sim_seed).page_response.mean();
  }
  if (spec.run_local) {
    MetricLabelScope label("local");
    // Reuses the all-local assignment built for calibration above: its
    // decision bits and cached times are capacity-independent, so the
    // scenario's capacity changes do not invalidate it.
    out.local_response =
        simulator.simulate(all_local, sim_seed).page_response.mean();
  }
  if (spec.run_remote) {
    MetricLabelScope label("remote");
    out.remote_response =
        simulator.simulate(make_remote_assignment(sys), sim_seed)
            .page_response.mean();
  }
  MMR_COUNT("runner.runs", 1);
  return out;
}

ScenarioResult run_scenario(const ExperimentConfig& config,
                            const ScenarioSpec& spec, ThreadPool* pool) {
  MMR_CHECK_MSG(config.runs > 0, "need at least one run");
  ScenarioResult result;
  result.runs = config.runs;
  std::mutex mutex;
  TraceSpan scenario_span("run_scenario");
  if (scenario_span.active()) {
    scenario_span.arg("runs", static_cast<std::uint64_t>(config.runs));
  }
  // Capture the aggregation target on the calling thread: pool workers run
  // each seed under a private registry and merge it back here, so aggregates
  // are identical whatever the thread count (merge is associative).
  MetricsRegistry* metrics_target =
      metrics_enabled() ? &current_metrics() : nullptr;

  // Seeds are the outer parallelism here: when they run on the pool, the
  // solver must not re-enter the same pool from a worker (parallel_for is
  // not reentrant), so the per-run config drops the solver pool.
  ExperimentConfig run_config = config;
  if (pool != nullptr && pool->thread_count() > 1) {
    run_config.policy.pool = nullptr;
  }

  // One tag per scenario invocation; each run composes it with its index so
  // audit/flight rows from different runs (and repeated scenarios) never
  // collide, at any thread count.
  const std::uint64_t scenario_tag = next_provenance_scenario();

  auto one = [&](std::size_t r) {
    // Installed inside the worker (the tag is thread-local, so installing it
    // on the calling thread would be invisible to pool workers).
    ProvenanceRunScope prov_scope((scenario_tag << 32) |
                                  static_cast<std::uint32_t>(r));
    const std::uint64_t seed = mix_seed(config.base_seed, 1000 + r);
    MetricsRegistry per_run_metrics;
    RunOutcome out;
    {
      MetricsScope scope(metrics_target != nullptr ? &per_run_metrics
                                                   : nullptr);
      out = run_single(run_config, spec, seed);
    }

    std::lock_guard<std::mutex> lock(mutex);
    if (metrics_target != nullptr) metrics_target->merge(per_run_metrics);
    const double base = out.unconstrained_response;
    result.unconstrained_response.add(base);
    result.policy_d.add(out.ours_objective);
    result.ours.mean_response.add(out.ours_response);
    result.ours.rel_increase.add(relative_increase(out.ours_response, base));
    if (spec.run_lru) {
      result.lru.mean_response.add(out.lru_response);
      result.lru.rel_increase.add(relative_increase(out.lru_response, base));
    }
    if (spec.run_local) {
      result.local.mean_response.add(out.local_response);
      result.local.rel_increase.add(
          relative_increase(out.local_response, base));
    }
    if (spec.run_remote) {
      result.remote.mean_response.add(out.remote_response);
      result.remote.rel_increase.add(
          relative_increase(out.remote_response, base));
    }
    if (!out.ours_feasible) ++result.infeasible_runs;
  };

  if (pool != nullptr) {
    pool->parallel_for(config.runs, one);
  } else {
    for (std::size_t r = 0; r < config.runs; ++r) one(r);
  }

  MMR_GAUGE("runner.response.unconstrained",
            result.unconstrained_response.mean());
  MMR_GAUGE("runner.response.ours", result.ours.mean_response.mean());
  if (spec.run_lru) {
    MMR_GAUGE("runner.response.lru", result.lru.mean_response.mean());
  }
  if (spec.run_local) {
    MMR_GAUGE("runner.response.local", result.local.mean_response.mean());
  }
  if (spec.run_remote) {
    MMR_GAUGE("runner.response.remote", result.remote.mean_response.mean());
  }
  return result;
}

}  // namespace mmr
