// Response-time simulator (paper Sec. 5.1/5.2).
//
// Replays popularity-driven request streams against a replica placement and
// measures actual response times under per-request network perturbation.
// Two modes:
//   simulate(assignment)  — static placements (ours, Remote, Local): each
//       page request downloads the HTML plus the locally-marked objects from
//       S_i and the rest from R in parallel; response = max of the two
//       pipelines. Optional objects are requested with probability
//       p_interested, each over a fresh connection.
//   simulate_lru()        — the ideal LRU caching/redirection baseline: a
//       size-aware LRU cache per site, misses served by the repository with
//       zero redirection overhead, optionally subject to the Eq. 8 admission
//       throttle (requests beyond C(S_i) are served by R). Deferred optional
//       requests are interleaved in true time order via the event queue.
//
// With a fixed seed the perturbation stream is identical across static
// policies (the draw count per request does not depend on the placement), so
// policy comparisons are paired.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/threshold_replication.h"
#include "model/assignment.h"
#include "model/system.h"
#include "sim/perturb.h"
#include "sim/request_gen.h"
#include "util/stats.h"

namespace mmr {

struct SimParams {
  std::uint32_t requests_per_server = 10000;  ///< Table 1
  double p_interested = 0.10;
  double optional_request_fraction = 0.30;
  PerturbParams perturb;
  /// LRU: replay the stream once to warm the cache before measuring.
  bool lru_warm_start = true;
  /// LRU: enforce C(S_i) with a token bucket (Eq. 8); overflow goes to R.
  bool lru_enforce_capacity = true;
  /// Token-bucket burst, in seconds worth of capacity.
  double token_burst_seconds = 1.0;
  /// Keep every per-request response sample (enables quantiles/histograms
  /// in SimMetrics::page_samples at O(requests) memory).
  bool capture_samples = false;

  /// Load-dependent service extension (not in the paper, see DESIGN.md):
  /// when a component's placement-implied request load L exceeds its
  /// capacity C, its transfer times stretch by (L/C)^overload_exponent.
  /// Makes Eq. 8/9 violations visible in measured response times instead of
  /// being silently free. 0 disables (paper behaviour).
  double overload_exponent = 0.0;

  void validate() const;
};

struct SimMetrics {
  RunningStats page_response;      ///< per page request (Eq. 5 analogue)
  RunningStats optional_time;      ///< per optional object download
  RunningStats total_per_request;  ///< page response + its optional downloads
  std::vector<RunningStats> per_server_response;
  /// Populated only when SimParams::capture_samples is set.
  SampleSet page_samples;
  std::uint64_t lru_hits = 0;
  std::uint64_t lru_misses = 0;
  std::uint64_t lru_evictions = 0;
  std::uint64_t throttled_requests = 0;  ///< local HTTP reqs pushed to R
  std::uint64_t replica_creations = 0;   ///< threshold baseline only
  std::uint64_t replica_drops = 0;       ///< threshold baseline only

  void merge(const SimMetrics& other);
};

class Simulator {
 public:
  Simulator(const SystemModel& sys, SimParams params);

  const SystemModel& system() const { return *sys_; }
  const SimParams& params() const { return params_; }

  /// Simulates a static placement. Deterministic in `seed`.
  SimMetrics simulate(const Assignment& asg, std::uint64_t seed) const;

  /// Simulates the dynamic ideal-LRU baseline. Deterministic in `seed`.
  SimMetrics simulate_lru(std::uint64_t seed) const;

  /// Simulates the threshold-based dynamic replication baseline (related
  /// work; see baselines/threshold_replication.h). Same stream structure as
  /// the LRU baseline. Deterministic in (seed, params).
  SimMetrics simulate_threshold(std::uint64_t seed,
                                const ThresholdParams& params) const;

 private:
  const SystemModel* sys_;
  SimParams params_;
  RequestGenerator gen_;
};

}  // namespace mmr
