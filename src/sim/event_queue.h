// Minimal discrete-event kernel: a time-ordered queue with deterministic
// FIFO tie-breaking. The simulator uses it to interleave page arrivals and
// deferred optional-object requests so that shared per-server state (LRU
// cache, admission bucket) is touched in true chronological order.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mmr {

template <typename Event>
class EventQueue {
 public:
  struct Item {
    double time;
    std::uint64_t seq;  ///< insertion order; breaks ties deterministically
    Event event;
  };

  void push(double time, Event event) {
    if (time < last_popped_) {
      // Same-time reschedules computed as now + dt - dt can land a few ulps
      // before now(); clamp those to now so they keep FIFO order behind the
      // event being handled. A genuinely past time is still a caller bug.
      MMR_DCHECK(last_popped_ - time <=
                 1e-9 * std::max(1.0, std::abs(last_popped_)));
      time = last_popped_;
    }
    heap_.push_back({time, next_seq_++, std::move(event)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const Item& peek() const {
    MMR_DCHECK(!heap_.empty());
    return heap_.front();
  }

  Item pop() {
    MMR_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    last_popped_ = item.time;
    return item;
  }

  /// Time of the most recently popped event (0 before any pop).
  double now() const { return last_popped_; }

  /// Drops all events and rewinds the clock; heap storage is kept, so a
  /// reused queue allocates nothing in steady state (sim/des.cpp).
  void clear() {
    heap_.clear();
    next_seq_ = 0;
    last_popped_ = 0;
  }

 private:
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Item> heap_;
  std::uint64_t next_seq_ = 0;
  double last_popped_ = 0;
};

}  // namespace mmr
