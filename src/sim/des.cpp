#include "sim/des.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "io/provenance.h"
#include "model/shard.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "sim/event_queue.h"
#include "util/memacct.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mmr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// RepoJob owner for optional fetches (no outcome row to write back to).
constexpr std::uint32_t kOptionalOwner = 0xFFFFFFFFu;
/// Station tag marking an optional-fetch job at a site server.
constexpr std::uint64_t kOptionalTag = 1ull << 32;

/// Per-page service demands, fixed for a static placement. All four come
/// from the finalized CSR caches (the assignment keeps Eq. 3/4 current
/// incrementally), so the hot loop never touches per-object data.
struct PageService {
  double local = 0;       ///< Eq. 3 demand of the local pipeline
  double remote = 0;      ///< Eq. 4 demand (meaningful iff remote_count > 0)
  double all_remote = 0;  ///< redirect demand: everything via R
  double ideal = 0;       ///< unloaded Eq. 5 (stretch denominator)
  std::uint32_t remote_count = 0;
};

// Outcome flags.
constexpr std::uint8_t kHasRepo = 1;     ///< a repository job was submitted
constexpr std::uint8_t kRedirected = 2;  ///< local queue full → all via R
constexpr std::uint8_t kRejected = 4;    ///< local queue full → dropped

/// One page request's life, written by phases A/B and scored in phase C.
struct Outcome {
  double arrival = 0;
  double local_done = 0;  ///< local-pipeline completion (0 when no local job)
  double repo_done = 0;   ///< repository completion (0 when no repo job)
  float wait = 0;         ///< local admission-queue wait
  float repo_wait = 0;    ///< repository-queue wait (0 when no repo job)
  PageId page = kInvalidId;
  std::uint32_t depth = 0;  ///< local queue depth observed at arrival
  std::uint8_t flags = 0;
};

/// One job for the repository station, collected per server in phase A and
/// merged canonically in phase B.
struct RepoJob {
  double submit = 0;
  double service = 0;
  std::uint32_t owner = kOptionalOwner;  ///< global request index
};

struct LocalEvent {
  std::uint32_t owner = 0;  ///< request index within the server
  bool page_done = false;   ///< false: optional fetch finished
};

/// Phase-A outputs that are per-server scalars/stats; merged in canonical
/// server order on the main thread.
struct ServerPartial {
  RunningStats optional_local_time;
  std::uint64_t optional_fetches = 0;
  std::uint64_t optional_rejects = 0;
  std::uint64_t events = 0;
  std::uint32_t queue_peak = 0;
  double busy_s = 0;
  double horizon = 0;  ///< latest local completion
};

/// How many optional links an interested viewer follows (same formula as
/// the closed-form simulator, so workloads are comparable across modes).
std::uint32_t optional_request_count(const Page& p, double fraction) {
  if (p.optional.empty() || fraction <= 0) return 0;
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(
             fraction * static_cast<double>(p.optional.size()))));
}

/// Floyd's k-of-n sample into reusable storage (allocation-free once warm);
/// draw-for-draw identical to Rng::sample_without_replacement.
void sample_into(Rng& rng, std::uint32_t n, std::uint32_t k,
                 std::vector<std::uint32_t>* out) {
  out->clear();
  if (k >= n) {
    for (std::uint32_t v = 0; v < n; ++v) out->push_back(v);
    return;
  }
  for (std::uint32_t r = n - k; r < n; ++r) {
    const auto v = static_cast<std::uint32_t>(rng.bounded(r + 1));
    bool seen = false;
    for (std::uint32_t x : *out) {
      if (x == v) {
        seen = true;
        break;
      }
    }
    out->push_back(seen ? r : v);
  }
}

/// Scratch reused across every server of one shard, so the per-server loop
/// allocates nothing in steady state.
struct ShardScratch {
  Station station{StationConfig{}};
  EventQueue<LocalEvent> queue;
  std::vector<PageRequest> batch;
  std::vector<std::uint32_t> picks;
};

}  // namespace

void DesParams::validate() const {
  MMR_CHECK_MSG(requests_per_server > 0, "requests_per_server must be > 0");
  MMR_CHECK_MSG(arrival_rate_scale > 0, "arrival_rate_scale must be > 0");
  MMR_CHECK_MSG(server_concurrency > 0, "server_concurrency must be > 0");
  MMR_CHECK_MSG(repo_concurrency > 0, "repo_concurrency must be > 0");
  MMR_CHECK_MSG(batch_size > 0, "batch_size must be > 0");
  MMR_CHECK_MSG(p_interested >= 0 && p_interested <= 1, "bad p_interested");
  MMR_CHECK_MSG(
      optional_request_fraction >= 0 && optional_request_fraction <= 1,
      "bad optional_request_fraction");
}

DesSimulator::DesSimulator(const SystemModel& sys, DesParams params)
    : sys_(&sys), params_(params), gen_(sys) {
  params_.validate();
}

DesMetrics DesSimulator::simulate(const Assignment& asg,
                                  std::uint64_t seed) const {
  MMR_CHECK(&asg.system() == sys_);
  const SystemModel& sys = *sys_;
  const std::uint32_t n = sys.num_servers();
  const std::uint64_t per_server = params_.requests_per_server;
  MMR_CHECK_MSG(static_cast<std::uint64_t>(n) * per_server < kOptionalOwner,
                "too many total requests for 32-bit request indices");

  TelemetryPhaseScope phase_scope("simulate_des");
  TraceSpan span("simulate_des");
  if (span.active() && !current_metric_label().empty()) {
    span.arg("policy", current_metric_label());
  }

  DesMetrics m;
  m.per_server_sojourn.resize(n);

  // Per-page demands from the assignment's incremental Eq. 3/4 caches. The
  // redirect demand (everything from R) needs the total compulsory bytes,
  // one startup pass over the CSR.
  std::vector<PageService> services(sys.num_pages());
  for (PageId j = 0; j < sys.num_pages(); ++j) {
    PageService& svc = services[j];
    const Page& p = sys.page(j);
    svc.local = asg.page_local_time(j);
    svc.remote = asg.page_remote_time(j);
    svc.remote_count =
        static_cast<std::uint32_t>(p.compulsory.size()) - asg.num_comp_local(j);
    svc.ideal = std::max(svc.local, svc.remote_count > 0 ? svc.remote : 0.0);
    std::uint64_t bytes = p.html_bytes;
    for (ObjectId k : p.compulsory) bytes += sys.object_bytes(k);
    const Server& server = sys.server(p.host);
    svc.all_remote =
        server.ovhd_repo + transfer_seconds(bytes, server.repo_rate);
  }

  // Per-server RNG substreams: arrival streams split exactly like the
  // closed-form simulate() (pairs request-for-request at the same seed);
  // optional-link draws come from an independent stream so the arrival
  // stream is invariant across placements.
  Rng master(seed);
  std::vector<Rng> arrival_rngs;
  arrival_rngs.reserve(n);
  for (ServerId i = 0; i < n; ++i) {
    arrival_rngs.push_back(master.split(0x51D0 + i));
  }

  // Outcome storage is the dominant allocation: charge it up front so a
  // --mem-budget aborts before the fill, with the deterministic size.
  const std::uint64_t total_requests = static_cast<std::uint64_t>(n) *
                                       per_server;
  const std::uint64_t outcome_bytes = total_requests * sizeof(Outcome);
  memacct::Charge outcome_charge(memacct::Category::kSimDes, outcome_bytes);
  std::vector<Outcome> outcomes(total_requests);
  std::vector<std::vector<RepoJob>> repo_streams(n);
  std::vector<ServerPartial> partials(n);

  const double inv_scale = 1.0 / params_.arrival_rate_scale;
  const StationConfig server_cfg{params_.server_concurrency,
                                 params_.queue_cap, params_.discipline};

  // Queue-dynamics collection (obs/timeseries.h). One shard per simulate
  // call; every station row is written by exactly one event loop (phase A
  // owns each server, phase B the repository), so workers never share a row.
  std::optional<TimeseriesShard> ts;
  if (timeseries_enabled()) {
    ts.emplace(timeseries_config(), n);
    ts->run = provenance_run_or_zero();
    ts->policy = current_metric_label();
    ts->mode = FlightMode::kDes;
    ts->server_concurrency = params_.server_concurrency;
    ts->repo_concurrency = params_.repo_concurrency;
  }

  // --progress ETA for the DES: virtual time is the natural progress clock
  // (events per request vary), so each server reports permille of its
  // expected horizon, estimated from its Poisson arrival intensity.
  std::optional<ProgressReporter> progress;
  std::vector<double> est_horizon;
  if (progress_enabled()) {
    progress.emplace("simulate_des", static_cast<std::uint64_t>(n) * 1000);
    est_horizon.resize(n);
    for (ServerId i = 0; i < n; ++i) {
      const double rate = gen_.arrival_rate(i) * params_.arrival_rate_scale;
      est_horizon[i] =
          rate > 0 ? static_cast<double>(per_server) / rate : 0.0;
    }
  }

  // ---- Phase A: per-server event loops (shard-parallel) -------------------
  auto run_server = [&](ServerId i, ShardScratch& scratch) {
    Rng arrival_rng = arrival_rngs[i];
    Rng opt_rng(mix_seed(mix_seed(seed, 0xDE5C0DEull), i));
    Station& st = scratch.station;
    st.reset(server_cfg);
    EventQueue<LocalEvent>& q = scratch.queue;
    q.clear();
    Outcome* out = outcomes.data() + static_cast<std::uint64_t>(i) *
                                         per_server;
    std::vector<RepoJob>& repo = repo_streams[i];
    ServerPartial& part = partials[i];
    const std::uint32_t global_base = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(i) * per_server);
    StationSeries* ser = ts ? &ts->server(i) : nullptr;
    const double est = progress ? est_horizon[i] : 0.0;
    std::uint32_t permille_done = 0;

    // Queue depth at an event boundary. queue_len/in_service must
    // partition occupancy: under quasi-PS in_service() is total occupancy
    // and queue_len() the excess beyond the slots, so the slots' share is
    // the difference (obs/timeseries.h sample()).
    auto qdepth = [&]() {
      const std::uint32_t qlen = st.queue_len();
      const std::uint32_t infl =
          params_.discipline == QueueDiscipline::kPs
              ? st.in_service() - qlen
              : st.in_service();
      return std::pair<std::uint32_t, std::uint32_t>(qlen, infl);
    };
    auto ts_sample = [&](double t) {
      if (ser == nullptr) return;
      const auto [qlen, infl] = qdepth();
      ser->sample(t, qlen, infl);
    };

    // Starts a queued job that on_complete() just popped.
    auto queued_started = [&](const Station::Started& s, double now) {
      if (ser != nullptr) ser->on_started(now, s.wait, s.done);
      if (s.tag < kOptionalTag) {
        Outcome& o = out[s.tag];
        o.local_done = s.done;
        o.wait = static_cast<float>(s.wait);
        q.push(s.done, {static_cast<std::uint32_t>(s.tag), true});
      } else {
        part.optional_local_time.add(s.wait + (s.done - now));
        q.push(s.done, {0, false});
      }
    };

    std::uint32_t generated = 0;   // arrivals drawn so far
    std::uint32_t consumed = 0;    // arrivals handled so far
    std::size_t bi = 0;            // cursor into the current batch
    double tgen = 0;               // generator clock (nominal time)
    scratch.batch.clear();

    while (consumed < per_server || !q.empty()) {
      if (bi == scratch.batch.size() && generated < per_server) {
        const auto want = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            params_.batch_size, per_server - generated));
        tgen = gen_.generate_into(i, want, tgen, arrival_rng, &scratch.batch);
        generated += want;
        bi = 0;
      }
      const double t_arr = bi < scratch.batch.size()
                               ? scratch.batch[bi].time * inv_scale
                               : kInf;
      const double t_ev = q.empty() ? kInf : q.peek().time;

      if (t_arr <= t_ev) {
        // Page arrival: admission at the local station, repo job raced in
        // parallel over its own connection.
        const PageId j = scratch.batch[bi].page;
        ++bi;
        const std::uint32_t idx = consumed++;
        ++part.events;
        Outcome& o = out[idx];
        o.arrival = t_arr;
        o.page = j;
        o.depth = st.queue_len();
        const PageService& svc = services[j];
        // Each offer outcome gets one fused collection call (arrival +
        // outcome + depth sample in a single window lookup); the depth is
        // read after the offer, as the granular sequence did.
        Station::Started s;
        switch (st.offer(t_arr, svc.local, idx, &s)) {
          case Station::Offer::kStarted:
            o.local_done = s.done;
            o.wait = static_cast<float>(s.wait);
            q.push(s.done, {idx, true});
            if (ser != nullptr) {
              const auto [qlen, infl] = qdepth();
              ser->on_arrival_started_sampled(t_arr, s.done, qlen, infl);
            }
            break;
          case Station::Offer::kQueued:
            // local_done/wait filled when a slot frees up
            if (ser != nullptr) {
              const auto [qlen, infl] = qdepth();
              ser->on_arrival_sampled(t_arr, qlen, infl);
            }
            break;
          case Station::Offer::kOverflow:
            if (params_.overflow == OverflowPolicy::kRedirect) {
              o.flags |= kRedirected | kHasRepo;
              repo.push_back({t_arr, svc.all_remote, global_base + idx});
              if (ser != nullptr) {
                const auto [qlen, infl] = qdepth();
                ser->on_arrival_redirected_sampled(t_arr, qlen, infl);
              }
            } else {
              o.flags |= kRejected;
              if (ser != nullptr) {
                const auto [qlen, infl] = qdepth();
                ser->on_arrival_rejected_sampled(t_arr, qlen, infl);
              }
            }
            continue;  // no local pipeline → no optional links
        }
        if (svc.remote_count > 0) {
          o.flags |= kHasRepo;
          repo.push_back({t_arr, svc.remote, global_base + idx});
        }
        continue;
      }

      const auto item = q.pop();
      const double now = item.time;
      ++part.events;
      if (now > part.horizon) part.horizon = now;
      if (progress && est > 0) {
        const auto p_now = static_cast<std::uint32_t>(
            std::min(1000.0, now / est * 1000.0));
        if (p_now > permille_done) {
          progress->tick(p_now - permille_done);
          permille_done = p_now;
        }
      }
      Station::Started s;
      if (st.on_complete(now, &s)) queued_started(s, now);
      if (!item.event.page_done) {
        if (ser != nullptr) {
          const auto [qlen, infl] = qdepth();
          ser->on_served_sampled(now, qlen, infl);
        }
        continue;
      }

      // The page's local pipeline rendered: the viewer follows optional
      // links, each a fresh job at whichever station holds the object.
      const Outcome& o = out[item.event.owner];
      const PageId j = o.page;
      const Page& p = sys.page(j);
      if (p.optional.empty() || !opt_rng.bernoulli(params_.p_interested)) {
        if (ser != nullptr) {
          const auto [qlen, infl] = qdepth();
          ser->on_served_sampled(now, qlen, infl);
        }
        continue;
      }
      // Optional-link fan-out mutates the station below, so the completion
      // is counted here and the depth sample waits until the whole event
      // settles — the occupancy integral must see the post-fan-out depth.
      if (ser != nullptr) ser->on_served(now);
      const std::uint32_t n_req =
          optional_request_count(p, params_.optional_request_fraction);
      sample_into(opt_rng, static_cast<std::uint32_t>(p.optional.size()),
                  n_req, &scratch.picks);
      for (std::uint32_t oi : scratch.picks) {
        if (asg.opt_local(j, oi)) {
          if (ser != nullptr) ser->on_arrival(now);
          switch (st.offer(now, sys.opt_local_time(j, oi), kOptionalTag, &s)) {
            case Station::Offer::kStarted:
              part.optional_local_time.add(s.done - now);
              q.push(s.done, {0, false});
              ++part.optional_fetches;
              if (ser != nullptr) ser->on_started(now, 0.0, s.done);
              break;
            case Station::Offer::kQueued:
              ++part.optional_fetches;
              break;
            case Station::Offer::kOverflow:
              if (params_.overflow == OverflowPolicy::kRedirect) {
                repo.push_back(
                    {now, sys.opt_remote_time(j, oi), kOptionalOwner});
                ++part.optional_fetches;
                if (ser != nullptr) ser->on_redirected(now);
              } else {
                ++part.optional_rejects;
                if (ser != nullptr) ser->on_rejected(now);
              }
              break;
          }
        } else {
          repo.push_back({now, sys.opt_remote_time(j, oi), kOptionalOwner});
          ++part.optional_fetches;
        }
      }
      ts_sample(now);
    }

    if (progress && permille_done < 1000) {
      progress->tick(1000 - permille_done);
    }
    part.queue_peak = st.queue_peak();
    part.busy_s = st.busy_seconds();
    // Page jobs were pushed at nondecreasing arrival times but optional
    // submits interleave; sort the stream by submit time, stably, so the
    // phase-B merge order is a pure function of this server's event order.
    std::stable_sort(repo.begin(), repo.end(),
                     [](const RepoJob& a, const RepoJob& b) {
                       return a.submit < b.submit;
                     });
  };

  {
    TraceSpan phase_a("des.servers");
    const ShardPlan plan =
        make_shard_plan(sys, std::max<std::uint32_t>(1, params_.shards));
    if (params_.pool != nullptr && plan.num_shards() > 1) {
      std::vector<ShardScratch> scratches(plan.num_shards());
      params_.pool->parallel_for(plan.num_shards(), [&](std::size_t sh) {
        const auto shard = static_cast<std::uint32_t>(sh);
        for (ServerId i = plan.server_begin(shard);
             i < plan.server_end(shard); ++i) {
          run_server(i, scratches[sh]);
        }
      });
    } else {
      ShardScratch scratch;
      for (ServerId i = 0; i < n; ++i) run_server(i, scratch);
    }
  }

  // ---- Phase B: canonical repository pass ---------------------------------
  // Concatenate the per-server streams in server order, then stable-sort by
  // submit time: ties keep (server, per-server submit order). The merged
  // order — and with it every repository completion — is independent of how
  // phase A was sharded or threaded.
  std::uint64_t total_jobs = 0;
  for (const auto& stream : repo_streams) total_jobs += stream.size();
  std::vector<RepoJob> jobs;
  std::vector<double> job_done;
  std::vector<float> job_wait;
  std::uint64_t repo_events = 0;
  Station repo_st(StationConfig{params_.repo_concurrency, kUnboundedQueue,
                                params_.discipline});
  {
    TraceSpan phase_b("des.repository");
    jobs.reserve(total_jobs);
    for (auto& stream : repo_streams) {
      jobs.insert(jobs.end(), stream.begin(), stream.end());
      stream.clear();
      stream.shrink_to_fit();
    }
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const RepoJob& a, const RepoJob& b) {
                       return a.submit < b.submit;
                     });
    job_done.assign(jobs.size(), 0.0);
    job_wait.assign(jobs.size(), 0.0f);

    StationSeries* repo_ser = ts ? &ts->repository() : nullptr;
    auto repo_depth = [&]() {
      const std::uint32_t qlen = repo_st.queue_len();
      const std::uint32_t infl =
          params_.discipline == QueueDiscipline::kPs
              ? repo_st.in_service() - qlen
              : repo_st.in_service();
      return std::pair<std::uint32_t, std::uint32_t>(qlen, infl);
    };

    // Both branches use the fused one-lookup collection calls: the repo
    // row sees every redirected or remote job, so at high load this loop
    // touches the series more often than all site servers combined.
    EventQueue<std::uint32_t> rq;
    std::size_t next = 0;
    Station::Started s;
    while (next < jobs.size() || !rq.empty()) {
      const double t_arr = next < jobs.size() ? jobs[next].submit : kInf;
      const double t_ev = rq.empty() ? kInf : rq.peek().time;
      if (t_arr <= t_ev) {
        ++repo_events;
        if (repo_st.offer(t_arr, jobs[next].service,
                          static_cast<std::uint64_t>(next),
                          &s) == Station::Offer::kStarted) {
          job_done[next] = s.done;
          rq.push(s.done, static_cast<std::uint32_t>(next));
          if (repo_ser != nullptr) {
            const auto [qlen, infl] = repo_depth();
            repo_ser->on_arrival_started_sampled(t_arr, s.done, qlen, infl);
          }
        } else if (repo_ser != nullptr) {
          const auto [qlen, infl] = repo_depth();
          repo_ser->on_arrival_sampled(t_arr, qlen, infl);
        }
        ++next;
      } else {
        rq.pop();
        ++repo_events;
        if (repo_st.on_complete(t_ev, &s)) {
          job_done[s.tag] = s.done;
          job_wait[s.tag] = static_cast<float>(s.wait);
          rq.push(s.done, static_cast<std::uint32_t>(s.tag));
          if (repo_ser != nullptr) {
            const auto [qlen, infl] = repo_depth();
            repo_ser->on_complete_started_sampled(t_ev, s.wait, s.done, qlen,
                                                  infl);
          }
        } else if (repo_ser != nullptr) {
          const auto [qlen, infl] = repo_depth();
          repo_ser->on_served_sampled(t_ev, qlen, infl);
        }
      }
    }
  }

  // Transient, deterministic charge for the repository stream (job count is
  // a pure function of instance + placement + seed), mirroring
  // account_sim_samples; the gauge carries the whole DES footprint.
  const std::uint64_t repo_bytes =
      total_jobs * (sizeof(RepoJob) + sizeof(double) + sizeof(float));
  if (repo_bytes > 0) {
    memacct::charge(memacct::Category::kSimDes, repo_bytes);
    memacct::release(memacct::Category::kSimDes, repo_bytes);
  }
  MMR_GAUGE("memory.sim.des",
            static_cast<double>(outcome_bytes + repo_bytes));

  // ---- Phase C: canonical scoring (main thread, server order) -------------
  {
    TraceSpan phase_c("des.score");
    FlightLog* flog = flight_enabled() ? &global_flight_log() : nullptr;
    const std::uint32_t sample_every = flight_sample_every();
    const std::uint64_t run = provenance_run_or_zero();
    const std::string policy = current_metric_label();
    std::vector<FlightRecord> flight_batch;

    std::optional<ObsShard> obs_shard;
    if (obs_enabled()) {
      obs_shard.emplace(obs_config());
      obs_shard->run = run;
      obs_shard->policy = policy;
      obs_shard->mode = FlightMode::kDes;
    }

    MetricCounter* c_requests =
        metrics_enabled() ? &current_metrics().counter("sim.requests")
                          : nullptr;

    // Write back repository completions for page jobs.
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      if (jobs[k].owner != kOptionalOwner) {
        outcomes[jobs[k].owner].repo_done = job_done[k];
        outcomes[jobs[k].owner].repo_wait = job_wait[k];
      }
    }

    // Causal async spans for the flight-sampled requests: every lifecycle
    // stage shares the request's async id, so one request renders as one
    // nested track in the Chrome trace. Virtual time maps to trace time at
    // 1 virtual second = 1 µs, based at phase C so the tracks land next to
    // the solver spans.
    const bool tracing = trace_enabled();
    const std::uint64_t trace_base = tracing ? monotonic_now_ns() : 0;
    auto emit_stage = [&](std::uint64_t id, const char* stage, double start_v,
                          double dur_v,
                          std::vector<std::pair<std::string, std::string>>
                              trace_args) {
      TraceEvent e;
      e.name = stage;
      e.start_ns = trace_base +
                   static_cast<std::uint64_t>(std::max(0.0, start_v) * 1000.0);
      e.dur_ns = static_cast<std::uint64_t>(std::max(0.0, dur_v) * 1000.0);
      e.async_id = id;
      e.cat = "mmr.des";
      e.args = std::move(trace_args);
      Tracer::instance().record(std::move(e));
    };

    double horizon = 0;
    for (ServerId i = 0; i < n; ++i) {
      if (partials[i].horizon > horizon) horizon = partials[i].horizon;
    }
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      if (job_done[k] > horizon) horizon = job_done[k];
    }
    m.horizon_s = horizon;

    for (ServerId i = 0; i < n; ++i) {
      const Outcome* out = outcomes.data() + static_cast<std::uint64_t>(i) *
                                                 per_server;
      for (std::uint32_t r = 0; r < per_server; ++r) {
        const Outcome& o = out[r];
        ++m.arrivals;
        const bool sampled = r % sample_every == 0;
        const std::uint64_t req_id =
            static_cast<std::uint64_t>(i) * per_server + r + 1;
        if ((o.flags & kRejected) != 0) {
          ++m.rejects;
          if (tracing && sampled) {
            emit_stage(req_id, "request", o.arrival, 0.0,
                       {{"server", std::to_string(i)},
                        {"page", std::to_string(o.page)},
                        {"queue_depth", std::to_string(o.depth)},
                        {"outcome", "\"rejected\""}});
          }
          continue;
        }
        if ((o.flags & kRedirected) != 0) ++m.redirects;
        ++m.completions;
        const double done = std::max(o.local_done, o.repo_done);
        const double sojourn = done - o.arrival;
        const PageService& svc = services[o.page];
        const double stretch = svc.ideal > 0 ? sojourn / svc.ideal : 1.0;
        m.sojourn.add(sojourn);
        m.wait.add(o.wait);
        m.stretch.add(stretch);
        m.per_server_sojourn[i].add(sojourn);
        if (params_.capture_samples) {
          m.sojourn_samples.add(sojourn);
          m.stretch_samples.add(stretch);
        }
        if (c_requests != nullptr) c_requests->add(1);
        if (obs_shard) {
          obs_shard->observe(o.page, i, o.arrival, sojourn, stretch,
                             o.repo_done > 0 ? o.repo_done - o.arrival : 0.0);
        }
        const double local_service =
            o.local_done > 0 ? o.local_done - o.arrival - o.wait : 0.0;
        const double repo_service =
            o.repo_done > 0 ? o.repo_done - o.arrival - o.repo_wait : 0.0;
        if (flog != nullptr && sampled) {
          FlightRecord rec;
          rec.run = run;
          rec.policy = policy;
          rec.mode = FlightMode::kDes;
          rec.server = i;
          rec.page = o.page;
          rec.index = r;
          rec.t_local = o.local_done > 0 ? o.local_done - o.arrival : 0.0;
          rec.t_remote = o.repo_done > 0 ? o.repo_done - o.arrival : 0.0;
          rec.response = sojourn;
          rec.remote_bound = rec.t_remote > rec.t_local;
          rec.local_stretch = stretch;
          rec.throttled = (o.flags & kRedirected) != 0 ? 1 : 0;
          rec.local_wait = o.wait;
          rec.local_service = local_service;
          rec.repo_wait = o.repo_wait;
          rec.repo_service = repo_service;
          rec.queue_depth = o.depth;
          flight_batch.push_back(std::move(rec));
        }
        if (tracing && sampled) {
          emit_stage(req_id, "request", o.arrival, sojourn,
                     {{"server", std::to_string(i)},
                      {"page", std::to_string(o.page)},
                      {"queue_depth", std::to_string(o.depth)},
                      {"outcome", (o.flags & kRedirected) != 0
                                      ? "\"redirected\""
                                      : "\"ok\""}});
          if (o.wait > 0) {
            emit_stage(req_id, "local.wait", o.arrival, o.wait, {});
          }
          if (o.local_done > 0) {
            emit_stage(req_id, "local.service", o.arrival + o.wait,
                       local_service, {});
          }
          if (o.repo_done > 0) {
            if (o.repo_wait > 0) {
              emit_stage(req_id, "repo.wait", o.arrival, o.repo_wait, {});
            }
            emit_stage(req_id, "repo.service", o.arrival + o.repo_wait,
                       repo_service, {});
          }
        }
      }
      if (flog != nullptr && !flight_batch.empty()) {
        flog->add(std::move(flight_batch));
        flight_batch.clear();
      }
    }

    // Optional-fetch stats: local sojourns first (server order), then
    // repository sojourns (merged order) — both orders canonical.
    for (ServerId i = 0; i < n; ++i) {
      m.optional_time.merge(partials[i].optional_local_time);
      m.optional_fetches += partials[i].optional_fetches;
      m.optional_rejects += partials[i].optional_rejects;
      m.events += partials[i].events;
      if (partials[i].queue_peak > m.queue_peak) {
        m.queue_peak = partials[i].queue_peak;
      }
      m.server_busy_s += partials[i].busy_s;
    }
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      if (jobs[k].owner == kOptionalOwner) {
        m.optional_time.add(job_done[k] - jobs[k].submit);
      }
    }
    m.events += repo_events;
    m.repo_jobs = repo_st.jobs_started();
    m.repo_queue_peak = repo_st.queue_peak();
    m.repo_busy_s = repo_st.busy_seconds();
    if (m.horizon_s > 0) {
      m.server_utilization =
          m.server_busy_s /
          (m.horizon_s * static_cast<double>(n) * params_.server_concurrency);
      m.repo_utilization =
          m.repo_busy_s / (m.horizon_s * params_.repo_concurrency);
    }

    if (obs_shard && obs_shard->requests > 0) {
      global_obs_log().add(std::move(*obs_shard));
    }

    if (ts) {
      ts->horizon_s = m.horizon_s;
      ts->des_arrivals = m.arrivals;
      ts->des_completions = m.completions;
      ts->des_rejects = m.rejects;
      ts->des_redirects = m.redirects;
      ts->des_server_busy_s = m.server_busy_s;
      ts->des_repo_busy_s = m.repo_busy_s;
      global_timeseries_log().add(std::move(*ts));
    }
  }

  MMR_COUNT("des.arrivals", m.arrivals);
  MMR_COUNT("des.completions", m.completions);
  MMR_COUNT("des.rejects", m.rejects);
  MMR_COUNT("des.redirects", m.redirects);
  MMR_COUNT("des.optional_fetches", m.optional_fetches);
  MMR_COUNT("des.repo_jobs", m.repo_jobs);
  MMR_COUNT("des.events", m.events);
  MMR_GAUGE("des.utilization.server", m.server_utilization);
  MMR_GAUGE("des.utilization.repo", m.repo_utilization);
  MMR_GAUGE("des.queue_peak.server", static_cast<double>(m.queue_peak));
  MMR_GAUGE("des.queue_peak.repo", static_cast<double>(m.repo_queue_peak));
  MMR_GAUGE("des.horizon_s", m.horizon_s);
  return m;
}

}  // namespace mmr
