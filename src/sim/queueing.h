// Deterministic queueing stations for the discrete-event simulator
// (sim/des.h).
//
// A Station models one service point — a site server or the repository —
// with finite concurrency: up to `concurrency` jobs are in service at once,
// later arrivals wait in a bounded FIFO queue (Eq. 8's admission throttle
// realized as an actual queue instead of a token bucket). Two disciplines:
//
//   kFifo  — jobs are served in arrival order by `concurrency` parallel
//            connection slots; service time is the job's intrinsic demand.
//   kPs    — quasi processor sharing: every admitted job enters service
//            immediately and its demand is stretched by the instantaneous
//            occupancy (n/concurrency at admission). This approximates PS
//            with O(1) events per job instead of rescheduling every
//            in-flight completion on each occupancy change; see DESIGN.md
//            ("Where the DES departs from Eq. 5").
//
// The station itself never owns an event queue: offer()/on_complete()
// return the completion times for the caller to schedule on its
// EventQueue, which keeps one station usable from any event loop and makes
// the whole state machine a pure function of the (time-ordered) call
// sequence — the determinism contract the DES shard merge relies on.
//
// The pending queue is a ring over a std::vector that recycles its storage
// when fully drained, so steady-state operation allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace mmr {

enum class QueueDiscipline : std::uint8_t { kFifo = 0, kPs = 1 };

/// What to do with a page request that finds the station's queue full.
enum class OverflowPolicy : std::uint8_t {
  kRedirect = 0,  ///< serve the whole request from the repository
  kReject = 1,    ///< drop it (counted; arrivals == completions + rejects)
};

inline constexpr std::uint32_t kUnboundedQueue = 0xFFFFFFFFu;

/// "fifo" / "ps" — artifact and flag spellings (queueing.cpp).
const char* queue_discipline_name(QueueDiscipline d);
QueueDiscipline parse_queue_discipline(const std::string& name);
/// "redirect" / "reject".
const char* overflow_policy_name(OverflowPolicy p);
OverflowPolicy parse_overflow_policy(const std::string& name);

struct StationConfig {
  std::uint32_t concurrency = 1;          ///< parallel connection slots
  std::uint32_t queue_cap = kUnboundedQueue;  ///< pending-job bound
  QueueDiscipline discipline = QueueDiscipline::kFifo;
};

class Station {
 public:
  /// A job that just entered service.
  struct Started {
    std::uint64_t tag = 0;  ///< caller-defined job identity
    double done = 0;        ///< completion time to schedule
    double wait = 0;        ///< time the job spent queued before service
  };

  enum class Offer : std::uint8_t { kStarted, kQueued, kOverflow };

  explicit Station(const StationConfig& cfg) { reset(cfg); }

  /// Submits a job with intrinsic service demand `service` at time `now`.
  /// kStarted fills *started (schedule started->done); kQueued parks the
  /// job until an on_complete() frees a slot; kOverflow leaves the station
  /// untouched (the caller applies its OverflowPolicy).
  Offer offer(double now, double service, std::uint64_t tag,
              Started* started) {
    MMR_DCHECK(service >= 0);
    if (cfg_.discipline == QueueDiscipline::kPs) {
      // Quasi-PS: the queue bound caps total occupancy beyond the slots.
      if (in_service_ >= cfg_.concurrency &&
          in_service_ - cfg_.concurrency >= cfg_.queue_cap) {
        return Offer::kOverflow;
      }
      ++in_service_;
      note_ps_peak();
      start(now, now, ps_stretch(service), tag, started);
      return Offer::kStarted;
    }
    if (in_service_ < cfg_.concurrency) {
      ++in_service_;
      start(now, now, service, tag, started);
      return Offer::kStarted;
    }
    if (queue_len() >= cfg_.queue_cap) return Offer::kOverflow;
    pending_.push_back({service, tag, now});
    if (queue_len() > queue_peak_) queue_peak_ = queue_len();
    return Offer::kQueued;
  }

  /// Marks one in-service job complete at time `now`. Returns true when a
  /// queued job enters service (fills *started for the caller to schedule).
  bool on_complete(double now, Started* started) {
    MMR_DCHECK(in_service_ > 0);
    if (cfg_.discipline == QueueDiscipline::kPs || head_ == pending_.size()) {
      --in_service_;
      recycle();
      return false;
    }
    const Pending next = pending_[head_++];
    recycle();
    start(now, next.enqueued, next.service, next.tag, started);
    return true;
  }

  std::uint32_t in_service() const { return in_service_; }
  std::uint32_t queue_len() const {
    if (cfg_.discipline == QueueDiscipline::kPs) {
      return in_service_ > cfg_.concurrency ? in_service_ - cfg_.concurrency
                                            : 0;
    }
    return static_cast<std::uint32_t>(pending_.size() - head_);
  }
  /// High-water mark of queue_len() (for kPs: occupancy beyond the slots).
  std::uint32_t queue_peak() const { return queue_peak_; }
  /// Total intrinsic service demand started (utilization numerator).
  double busy_seconds() const { return busy_seconds_; }
  std::uint64_t jobs_started() const { return jobs_started_; }

  /// Reconfigures and clears all state; pending storage is kept.
  void reset(const StationConfig& cfg) {
    MMR_CHECK_MSG(cfg.concurrency > 0, "station concurrency must be > 0");
    cfg_ = cfg;
    pending_.clear();
    head_ = 0;
    in_service_ = 0;
    queue_peak_ = 0;
    busy_seconds_ = 0;
    jobs_started_ = 0;
  }

 private:
  struct Pending {
    double service;
    std::uint64_t tag;
    double enqueued;
  };

  void start(double now, double enqueued, double effective_service,
             std::uint64_t tag, Started* started) {
    busy_seconds_ += effective_service;
    ++jobs_started_;
    started->tag = tag;
    started->done = now + effective_service;
    started->wait = now - enqueued;
  }

  /// Occupancy stretch at admission; below full concurrency PS behaves
  /// like dedicated slots.
  double ps_stretch(double service) const {
    return in_service_ <= cfg_.concurrency
               ? service
               : service * (static_cast<double>(in_service_) /
                            static_cast<double>(cfg_.concurrency));
  }

  void note_ps_peak() {
    const std::uint32_t q = queue_len();
    if (q > queue_peak_) queue_peak_ = q;
  }

  /// Reclaims ring storage once the queue fully drains (amortized O(1)).
  void recycle() {
    if (head_ == pending_.size() && head_ != 0) {
      pending_.clear();
      head_ = 0;
    }
  }

  StationConfig cfg_;
  std::vector<Pending> pending_;
  std::size_t head_ = 0;
  std::uint32_t in_service_ = 0;
  std::uint32_t queue_peak_ = 0;
  double busy_seconds_ = 0;
  std::uint64_t jobs_started_ = 0;
};

}  // namespace mmr
