#include "sim/queueing.h"

namespace mmr {

const char* queue_discipline_name(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::kFifo: return "fifo";
    case QueueDiscipline::kPs: return "ps";
  }
  return "?";
}

QueueDiscipline parse_queue_discipline(const std::string& name) {
  if (name == "fifo") return QueueDiscipline::kFifo;
  if (name == "ps") return QueueDiscipline::kPs;
  MMR_CHECK_MSG(false, "unknown queue discipline '" << name
                                                    << "' (fifo|ps)");
  return QueueDiscipline::kFifo;
}

const char* overflow_policy_name(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::kRedirect: return "redirect";
    case OverflowPolicy::kReject: return "reject";
  }
  return "?";
}

OverflowPolicy parse_overflow_policy(const std::string& name) {
  if (name == "redirect") return OverflowPolicy::kRedirect;
  if (name == "reject") return OverflowPolicy::kReject;
  MMR_CHECK_MSG(false, "unknown overflow policy '" << name
                                                   << "' (redirect|reject)");
  return OverflowPolicy::kRedirect;
}

}  // namespace mmr
