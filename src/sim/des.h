// Discrete-event queueing simulator: the "millions of users" mode.
//
// The three closed-form simulate modes (sim/simulator.h) price every request
// with Eq. 5 — servers and the repository never actually queue. The DES
// makes contention real: each site server and the repository is a
// finite-concurrency Station (sim/queueing.h), and a page request becomes
// two jobs raced in parallel over one persistent pipelined connection each:
//
//   * a LOCAL job at the host server — HTML + the compulsory objects the
//     placement marks local, service demand = the Eq. 3 pipeline time from
//     the finalized CSR network caches (Assignment::page_local_time);
//   * a REPOSITORY job at R (only when objects come from R) — demand =
//     the Eq. 4 pipeline time (Assignment::page_remote_time).
//
// Admission is Eq. 8's throttle as an actual bounded queue: a request that
// finds the server's queue full is either redirected to R wholesale (its
// demand becomes the everything-from-R transfer) or rejected, per
// OverflowPolicy. The page's sojourn is max(local done, repo done) −
// arrival; stretch is sojourn over the unloaded Eq. 5 ideal. Optional
// objects are fetched after the local pipeline renders, as separate jobs at
// whichever station the placement puts them.
//
// Execution is three phases, sharded along the PR 8 ShardPlan:
//   A. per-server event loops (shard-parallel): local-station queueing,
//      batched arrival generation (RequestGenerator::generate_into — the
//      hot loop allocates nothing in steady state), and collection of each
//      server's repository job stream;
//   B. canonical repository pass (sequential): all per-server repo streams
//      merged in (time, server, submit order) — the merge order is a pure
//      function of phase A's per-server outputs, so results are
//      byte-identical at any shard × thread count;
//   C. canonical scoring (sequential, server order): sojourn/wait/stretch
//      stats, metrics counters, flight records (FlightMode::kDes) and obs
//      sketch/SLO ingestion — all reading values already computed, in a
//      fixed order.
//
// Every per-server RNG substream is derived exactly like simulate()'s
// (master.split(0x51D0 + i)), so the DES arrival stream pairs request-for-
// request with the closed-form simulator at the same seed — the property
// tests/test_des.cpp cross-validates at near-zero load.
#pragma once

#include <cstdint>
#include <vector>

#include "model/assignment.h"
#include "sim/queueing.h"
#include "sim/request_gen.h"
#include "util/stats.h"

namespace mmr {

class ThreadPool;

struct DesParams {
  std::uint32_t requests_per_server = 10000;
  /// Arrival intensity as a multiple of the server's nominal page-request
  /// rate (Σ f(W_j)); nominal inter-arrival gaps are divided by this, so
  /// 2.0 doubles the offered load without changing the page mix.
  double arrival_rate_scale = 1.0;
  std::uint32_t server_concurrency = 8;   ///< connection slots per site
  std::uint32_t repo_concurrency = 64;    ///< connection slots at R
  /// Pending-connection bound per site server (Eq. 8 as a real queue).
  /// The repository queue is unbounded: R is the fallback of last resort.
  std::uint32_t queue_cap = 1024;
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  OverflowPolicy overflow = OverflowPolicy::kRedirect;
  double p_interested = 0.10;             ///< optional-link interest
  double optional_request_fraction = 0.30;
  std::uint32_t batch_size = 4096;        ///< arrivals generated per refill
  /// Execution grouping for phase A; 0 or 1 = unsharded. Results are
  /// byte-identical at any shards × pool size.
  std::uint32_t shards = 0;
  ThreadPool* pool = nullptr;             ///< phase-A workers; null = serial
  bool capture_samples = false;           ///< keep per-request sojourns

  void validate() const;
};

struct DesMetrics {
  RunningStats sojourn;        ///< page arrival → last byte, queueing incl.
  RunningStats wait;           ///< local admission-queue wait per page
  RunningStats stretch;        ///< sojourn / unloaded Eq. 5 ideal
  RunningStats optional_time;  ///< optional-fetch sojourns
  std::vector<RunningStats> per_server_sojourn;
  SampleSet sojourn_samples;   ///< capture_samples only, server order
  SampleSet stretch_samples;   ///< capture_samples only, server order

  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t rejects = 0;      ///< arrivals == completions + rejects
  std::uint64_t redirects = 0;    ///< served wholesale by R (queue full)
  std::uint64_t optional_fetches = 0;
  std::uint64_t optional_rejects = 0;
  std::uint64_t repo_jobs = 0;    ///< jobs the repository station served
  std::uint64_t events = 0;       ///< kernel events processed (all phases)

  std::uint32_t queue_peak = 0;       ///< max pending over all site servers
  std::uint32_t repo_queue_peak = 0;
  double server_busy_s = 0;           ///< Σ intrinsic demand at the sites
  double repo_busy_s = 0;
  double horizon_s = 0;               ///< latest completion (virtual time)
  /// busy / (horizon × total slots); 0 when the horizon is empty.
  double server_utilization = 0;
  double repo_utilization = 0;
};

class DesSimulator {
 public:
  DesSimulator(const SystemModel& sys, DesParams params);

  /// Runs the full three-phase simulation for one placement. Deterministic
  /// in (asg, seed) alone — shards/pool never change a byte of the result,
  /// including the flight and obs artifacts it feeds.
  DesMetrics simulate(const Assignment& asg, std::uint64_t seed) const;

 private:
  const SystemModel* sys_;
  DesParams params_;
  RequestGenerator gen_;
};

}  // namespace mmr
