#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include <optional>

#include "baselines/lru_cache.h"
#include "io/provenance.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "util/check.h"
#include "util/memacct.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace mmr {

namespace {

/// Per-simulation metric handles, resolved once so the per-request path is
/// an atomic add, not a registry lookup. Null members when collection is
/// off. The response histogram is split by the active metric label
/// ("sim.response_hist.ours" etc.) so per-policy distributions survive the
/// runner's aggregation.
struct SimMetricHandles {
  MetricCounter* requests = nullptr;
  MetricCounter* local_bound = nullptr;   ///< local pipeline set the max
  MetricCounter* remote_bound = nullptr;  ///< repository pipeline set the max
  MetricCounter* optional_downloads = nullptr;
  MetricHistogram* response_hist = nullptr;

  static SimMetricHandles acquire() {
    SimMetricHandles h;
    if (!metrics_enabled()) return h;
    MetricsRegistry& reg = current_metrics();
    h.requests = &reg.counter("sim.requests");
    h.local_bound = &reg.counter("sim.local_bound");
    h.remote_bound = &reg.counter("sim.remote_bound");
    h.optional_downloads = &reg.counter("sim.optional_downloads");
    h.response_hist =
        &reg.histogram(labeled_metric("sim.response_hist"), 0.0, 60.0, 60);
    return h;
  }

  void observe_response(double response, double t_local, double t_remote) {
    if (requests == nullptr) return;
    requests->add(1);
    (t_local >= t_remote ? local_bound : remote_bound)->add(1);
    response_hist->add(response);
  }
};

/// Per-simulation flight-recorder context, resolved once like the metric
/// handles. The sampler is index % N == 0 on the per-server arrival index —
/// fully deterministic, draws from no RNG stream, and recording reads only
/// values the simulation computed anyway, so enabling it cannot change a
/// single response time. Records are batched per server and appended to the
/// global log in one call.
struct FlightContext {
  FlightLog* log = nullptr;
  std::uint32_t sample_every = 1;
  std::uint64_t run = 0;
  std::string policy;
  FlightMode mode = FlightMode::kStatic;
  std::vector<FlightRecord> batch;

  static FlightContext acquire(FlightMode mode) {
    FlightContext ctx;
    if (!flight_enabled()) return ctx;
    ctx.log = &global_flight_log();
    ctx.sample_every = flight_sample_every();
    ctx.run = provenance_run_or_zero();
    ctx.policy = current_metric_label();
    ctx.mode = mode;
    return ctx;
  }

  bool sampled(std::uint32_t index) const {
    return log != nullptr && index % sample_every == 0;
  }

  FlightRecord make(ServerId server, PageId page, std::uint32_t index,
                    double t_local, double t_remote, double response) const {
    FlightRecord r;
    r.run = run;
    r.policy = policy;
    r.mode = mode;
    r.server = server;
    r.page = page;
    r.index = index;
    r.t_local = t_local;
    r.t_remote = t_remote;
    r.response = response;
    r.remote_bound = t_remote > t_local;
    return r;
  }

  void flush() {
    if (log != nullptr && !batch.empty()) log->add(std::move(batch));
    batch.clear();
  }
};

/// Per-simulation streaming-telemetry context (obs/obs.h), resolved once
/// like the flight recorder. Each simulate call builds ONE shard tagged
/// (run, policy, mode) and appends it on flush, so the canonical snapshot
/// merge sees the same shards no matter how many threads ran the scenario.
/// record() reads only values the simulation computed anyway — enabling it
/// cannot change a single response time.
struct ObsContext {
  ObsLog* log = nullptr;
  std::optional<ObsShard> shard;

  static ObsContext acquire(FlightMode mode) {
    ObsContext ctx;
    if (!obs_enabled()) return ctx;
    ctx.log = &global_obs_log();
    ctx.shard.emplace(obs_config());
    ctx.shard->run = provenance_run_or_zero();
    ctx.shard->policy = current_metric_label();
    ctx.shard->mode = mode;
    return ctx;
  }

  bool active() const { return log != nullptr; }

  /// `ideal` is the unloaded Eq. 5 response (nominal rates, no
  /// perturbation, no overload); stretch is response / ideal. `miss_cost`
  /// is the repository-pipeline time, the price of remote objects.
  void record(PageId page, ServerId server, double t, double response,
              double ideal, double miss_cost) {
    shard->observe(page, server, t, response,
                   ideal > 0 ? response / ideal : 1.0, miss_cost);
  }

  void flush() {
    if (log != nullptr && shard->requests > 0) log->add(std::move(*shard));
    log = nullptr;
  }
};

/// The unloaded max-of-pipelines response (Eq. 5 shape) for a request that
/// fetched `local_bytes` locally and `remote_bytes` from the repository,
/// under the server's NOMINAL parameters. The stretch denominator.
double ideal_response(const Server& server, std::uint64_t local_bytes,
                      std::uint64_t remote_bytes,
                      std::uint32_t remote_count) {
  const double t_local =
      server.ovhd_local + transfer_seconds(local_bytes, server.local_rate);
  const double t_remote =
      remote_count == 0
          ? 0.0
          : server.ovhd_repo + transfer_seconds(remote_bytes,
                                                server.repo_rate);
  return std::max(t_local, t_remote);
}

}  // namespace

void SimParams::validate() const {
  MMR_CHECK_MSG(requests_per_server > 0, "requests_per_server must be > 0");
  MMR_CHECK_MSG(p_interested >= 0 && p_interested <= 1, "bad p_interested");
  MMR_CHECK_MSG(optional_request_fraction >= 0 &&
                    optional_request_fraction <= 1,
                "bad optional_request_fraction");
  MMR_CHECK_MSG(token_burst_seconds > 0, "bad token_burst_seconds");
  MMR_CHECK_MSG(overload_exponent >= 0, "bad overload_exponent");
  perturb.validate();
}

void SimMetrics::merge(const SimMetrics& other) {
  page_response.merge(other.page_response);
  optional_time.merge(other.optional_time);
  total_per_request.merge(other.total_per_request);
  if (per_server_response.size() < other.per_server_response.size()) {
    per_server_response.resize(other.per_server_response.size());
  }
  for (std::size_t i = 0; i < other.per_server_response.size(); ++i) {
    per_server_response[i].merge(other.per_server_response[i]);
  }
  for (double x : other.page_samples.samples()) page_samples.add(x);
  lru_hits += other.lru_hits;
  lru_misses += other.lru_misses;
  lru_evictions += other.lru_evictions;
  throttled_requests += other.throttled_requests;
  replica_creations += other.replica_creations;
  replica_drops += other.replica_drops;
}

Simulator::Simulator(const SystemModel& sys, SimParams params)
    : sys_(&sys), params_(params), gen_(sys) {
  params_.validate();
}

namespace {

/// Load-dependent slowdown factor: (load/capacity)^exponent above capacity,
/// 1.0 otherwise (see SimParams::overload_exponent).
double overload_factor(double load, double capacity, double exponent) {
  if (exponent <= 0 || capacity == kUnlimited || capacity <= 0) return 1.0;
  if (load <= capacity) return 1.0;
  return std::pow(load / capacity, exponent);
}

/// How many optional links an interested viewer of page p follows.
std::uint32_t optional_request_count(const Page& p, double fraction) {
  if (p.optional.empty() || fraction <= 0) return 0;
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(
             fraction * static_cast<double>(p.optional.size()))));
}

/// Continuous token bucket enforcing an HTTP req/s ceiling.
class TokenBucket {
 public:
  TokenBucket(double rate, double burst_seconds)
      : rate_(rate),
        burst_(rate == kUnlimited ? kUnlimited : rate * burst_seconds),
        level_(burst_) {}

  /// Tries to take `n` tokens at time t; returns false when exhausted.
  bool take(double n, double t) {
    if (rate_ == kUnlimited) return true;
    refill(t);
    if (level_ >= n) {
      level_ -= n;
      return true;
    }
    return false;
  }

  /// Takes tokens unconditionally (mandatory work, e.g. the HTML document);
  /// the level saturates at zero so mandatory bursts still deplete headroom.
  void force_take(double n, double t) {
    if (rate_ == kUnlimited) return;
    refill(t);
    level_ = std::max(0.0, level_ - n);
  }

 private:
  void refill(double t) {
    if (t > last_) {
      level_ = std::min(burst_, level_ + rate_ * (t - last_));
      last_ = t;
    }
  }

  double rate_;
  double burst_;
  double level_;
  double last_ = 0;
};

}  // namespace

namespace {

/// Byte-accounts the per-request capture buffer (sim.events) at the end of a
/// simulation. The charge is transient — ownership stays with the returned
/// SimMetrics — but it lands in the category peak, honors --mem-budget, and
/// sets the deterministic memory.sim.events gauge (sample count is a pure
/// function of the instance + seed).
void account_sim_samples(const SimMetrics& metrics) {
  const std::uint64_t bytes =
      metrics.page_samples.samples().size() * sizeof(double);
  if (bytes == 0) return;
  memacct::charge(memacct::Category::kSimEvents, bytes);
  memacct::release(memacct::Category::kSimEvents, bytes);
  MMR_GAUGE("memory.sim.events", static_cast<double>(bytes));
}

}  // namespace

SimMetrics Simulator::simulate(const Assignment& asg,
                               std::uint64_t seed) const {
  MMR_CHECK(&asg.system() == sys_);
  const SystemModel& sys = *sys_;
  SimMetrics metrics;
  metrics.per_server_response.resize(sys.num_servers());
  Rng master(seed);
  SimMetricHandles mh = SimMetricHandles::acquire();
  FlightContext flight = FlightContext::acquire(FlightMode::kStatic);
  ObsContext obs = ObsContext::acquire(FlightMode::kStatic);
  TelemetryPhaseScope phase_scope("simulate");
  TraceSpan span("simulate");
  if (span.active() && !current_metric_label().empty()) {
    span.arg("policy", current_metric_label());
  }

  // The pipeline byte totals are fixed per page for a static placement;
  // precompute them so the per-request work is O(1) plus optional picks.
  struct PageBytes {
    std::uint64_t local = 0;
    std::uint64_t remote = 0;
    std::uint32_t remote_count = 0;
  };
  std::vector<PageBytes> totals(sys.num_pages());
  for (PageId j = 0; j < sys.num_pages(); ++j) {
    const Page& p = sys.page(j);
    PageBytes& t = totals[j];
    t.local = p.html_bytes;
    for (std::uint32_t idx = 0; idx < p.compulsory.size(); ++idx) {
      const std::uint64_t bytes = sys.object_bytes(p.compulsory[idx]);
      if (asg.comp_local(j, idx)) {
        t.local += bytes;
      } else {
        t.remote += bytes;
        ++t.remote_count;
      }
    }
  }

  // Load-dependent slowdowns from the placement-implied component loads.
  const double repo_slow = overload_factor(asg.repo_proc_load(),
                                           sys.repository().proc_capacity,
                                           params_.overload_exponent);

  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    Rng rng = master.split(0x51D0 + i);
    const Server& server = sys.server(i);
    const double local_slow = overload_factor(asg.server_proc_load(i),
                                              server.proc_capacity,
                                              params_.overload_exponent);
    const std::vector<PageRequest> requests =
        gen_.generate(i, params_.requests_per_server, rng);

    std::uint32_t req_index = 0;
    for (const PageRequest& req : requests) {
      const PageId j = req.page;
      const Page& p = sys.page(j);
      const NetworkSample net = perturb(server, params_.perturb, rng);

      const std::uint64_t local_bytes = totals[j].local;
      const std::uint64_t remote_bytes = totals[j].remote;
      const std::uint32_t remote_count = totals[j].remote_count;
      const double t_local =
          net.ovhd_local +
          transfer_seconds(local_bytes, net.local_rate) * local_slow;
      // No repository connection is opened when nothing comes from R.
      const double t_remote =
          remote_count == 0
              ? 0.0
              : net.ovhd_repo +
                    transfer_seconds(remote_bytes, net.repo_rate) * repo_slow;
      const double response = std::max(t_local, t_remote);

      double optional_total = 0;
      std::uint32_t optional_requested = 0;
      if (!p.optional.empty() && rng.bernoulli(params_.p_interested)) {
        const std::uint32_t n_req = optional_request_count(
            p, params_.optional_request_fraction);
        optional_requested = n_req;
        const auto picks = rng.sample_without_replacement(
            static_cast<std::uint32_t>(p.optional.size()), n_req);
        for (std::uint32_t idx : picks) {
          // Each optional download opens a fresh connection (fresh draw).
          const NetworkSample onet = perturb(server, params_.perturb, rng);
          const std::uint64_t bytes =
              sys.object_bytes(p.optional[idx].object);
          const double t =
              asg.opt_local(j, idx)
                  ? onet.ovhd_local +
                        transfer_seconds(bytes, onet.local_rate) * local_slow
                  : onet.ovhd_repo +
                        transfer_seconds(bytes, onet.repo_rate) * repo_slow;
          metrics.optional_time.add(t);
          optional_total += t;
          if (mh.optional_downloads != nullptr) mh.optional_downloads->add(1);
        }
      }

      mh.observe_response(response, t_local, t_remote);
      metrics.page_response.add(response);
      metrics.per_server_response[i].add(response);
      metrics.total_per_request.add(response + optional_total);
      if (params_.capture_samples) metrics.page_samples.add(response);
      if (obs.active()) {
        obs.record(j, i, req.time, response,
                   ideal_response(server, local_bytes, remote_bytes,
                                  remote_count),
                   t_remote);
      }

      if (flight.sampled(req_index)) {
        FlightRecord r =
            flight.make(i, j, req_index, t_local, t_remote, response);
        r.local_stretch = local_slow;
        r.repo_stretch = repo_slow;
        r.optional_requested = optional_requested;
        r.optional_time = optional_total;
        flight.batch.push_back(std::move(r));
      }
      ++req_index;
    }
    flight.flush();
  }
  obs.flush();
  account_sim_samples(metrics);
  return metrics;
}

namespace {

/// Deferred optional-object fetch in the LRU simulation.
struct OptionalFetch {
  PageId page = kInvalidId;
  std::uint32_t opt_index = 0;
};

struct LruEvent {
  enum class Kind { kPageArrival, kOptionalFetch } kind;
  PageRequest request;      // kPageArrival
  OptionalFetch optional;   // kOptionalFetch
};

}  // namespace

SimMetrics Simulator::simulate_lru(std::uint64_t seed) const {
  const SystemModel& sys = *sys_;
  SimMetrics metrics;
  metrics.per_server_response.resize(sys.num_servers());
  Rng master(seed);
  SimMetricHandles mh = SimMetricHandles::acquire();
  FlightContext flight = FlightContext::acquire(FlightMode::kLru);
  ObsContext obs = ObsContext::acquire(FlightMode::kLru);
  TelemetryPhaseScope phase_scope("simulate_lru");
  MMR_TRACE_SPAN("simulate_lru");

  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    const Server& server = sys.server(i);
    const std::uint64_t html = sys.html_bytes_on_server(i);
    const std::uint64_t cache_capacity =
        server.storage_capacity > html ? server.storage_capacity - html : 0;

    const std::uint32_t passes = params_.lru_warm_start ? 2 : 1;
    LruCache cache(cache_capacity);
    TokenBucket bucket(params_.lru_enforce_capacity ? server.proc_capacity
                                                    : kUnlimited,
                       params_.token_burst_seconds);

    for (std::uint32_t pass = 0; pass < passes; ++pass) {
      const bool measure = pass + 1 == passes;
      // Identical arrival/perturbation stream in both passes so the warm
      // pass populates exactly the working set the measured pass touches.
      Rng rng = master.split(0x17B0 + i);
      const std::vector<PageRequest> requests =
          gen_.generate(i, params_.requests_per_server, rng);

      EventQueue<LruEvent> queue;
      for (const PageRequest& r : requests) {
        queue.push(r.time, {LruEvent::Kind::kPageArrival, r, {}});
      }

      std::uint32_t arrival_index = 0;
      while (!queue.empty()) {
        auto item = queue.pop();
        const double now = item.time;
        if (item.event.kind == LruEvent::Kind::kPageArrival) {
          const PageId j = item.event.request.page;
          const Page& p = sys.page(j);
          const NetworkSample net = perturb(server, params_.perturb, rng);

          bucket.force_take(1.0, now);  // the HTML document, always local
          std::uint64_t local_bytes = p.html_bytes;
          std::uint64_t remote_bytes = 0;
          std::uint32_t remote_count = 0;
          std::uint32_t req_hits = 0;
          std::uint32_t req_misses = 0;
          std::uint32_t req_throttled = 0;
          for (ObjectId k : p.compulsory) {
            const std::uint64_t bytes = sys.object_bytes(k);
            if (cache.access(k)) {
              ++req_hits;
              if (bucket.take(1.0, now)) {
                local_bytes += bytes;
              } else {
                // Above C(S_i): served by R with zero redirection overhead.
                if (measure) ++metrics.throttled_requests;
                ++req_throttled;
                remote_bytes += bytes;
                ++remote_count;
              }
            } else {
              ++req_misses;
              remote_bytes += bytes;
              ++remote_count;
              cache.insert(k, bytes);
            }
          }
          const double t_local =
              net.ovhd_local + transfer_seconds(local_bytes, net.local_rate);
          const double t_remote =
              remote_count == 0 ? 0.0
                                : net.ovhd_repo + transfer_seconds(
                                                      remote_bytes,
                                                      net.repo_rate);
          const double response = std::max(t_local, t_remote);
          if (measure) {
            mh.observe_response(response, t_local, t_remote);
            metrics.page_response.add(response);
            metrics.per_server_response[i].add(response);
            metrics.total_per_request.add(response);
            if (params_.capture_samples) metrics.page_samples.add(response);
            if (obs.active()) {
              obs.record(j, i, now, response,
                         ideal_response(server, local_bytes, remote_bytes,
                                        remote_count),
                         t_remote);
            }
          }

          // The user inspects the page, then follows optional links; those
          // fetches hit the shared cache later in true time order.
          std::uint32_t optional_requested = 0;
          if (!p.optional.empty() && rng.bernoulli(params_.p_interested)) {
            const std::uint32_t n_req = optional_request_count(
                p, params_.optional_request_fraction);
            optional_requested = n_req;
            const auto picks = rng.sample_without_replacement(
                static_cast<std::uint32_t>(p.optional.size()), n_req);
            for (std::uint32_t idx : picks) {
              queue.push(now + response,
                         {LruEvent::Kind::kOptionalFetch, {}, {j, idx}});
            }
          }

          if (measure) {
            if (flight.sampled(arrival_index)) {
              FlightRecord r = flight.make(i, j, arrival_index, t_local,
                                           t_remote, response);
              r.optional_requested = optional_requested;
              r.cache_hits = req_hits;
              r.cache_misses = req_misses;
              r.throttled = req_throttled;
              flight.batch.push_back(std::move(r));
            }
            ++arrival_index;
          }
        } else {
          const PageId j = item.event.optional.page;
          const std::uint32_t idx = item.event.optional.opt_index;
          const ObjectId k = sys.page(j).optional[idx].object;
          const std::uint64_t bytes = sys.object_bytes(k);
          const NetworkSample net = perturb(server, params_.perturb, rng);
          double t;
          if (cache.access(k) && bucket.take(1.0, now)) {
            t = net.ovhd_local + transfer_seconds(bytes, net.local_rate);
          } else {
            t = net.ovhd_repo + transfer_seconds(bytes, net.repo_rate);
            cache.insert(k, bytes);
          }
          if (measure) {
            metrics.optional_time.add(t);
            if (mh.optional_downloads != nullptr) mh.optional_downloads->add(1);
          }
        }
      }
    }
    flight.flush();
    metrics.lru_hits += cache.hits();
    metrics.lru_misses += cache.misses();
    metrics.lru_evictions += cache.evictions();
  }
  obs.flush();
  MMR_COUNT("sim.lru.hits", metrics.lru_hits);
  MMR_COUNT("sim.lru.misses", metrics.lru_misses);
  MMR_COUNT("sim.lru.evictions", metrics.lru_evictions);
  MMR_COUNT("sim.throttled_requests", metrics.throttled_requests);
  account_sim_samples(metrics);
  return metrics;
}

SimMetrics Simulator::simulate_threshold(std::uint64_t seed,
                                         const ThresholdParams& params) const {
  params.validate();
  const SystemModel& sys = *sys_;
  SimMetrics metrics;
  metrics.per_server_response.resize(sys.num_servers());
  Rng master(seed);
  SimMetricHandles mh = SimMetricHandles::acquire();
  FlightContext flight = FlightContext::acquire(FlightMode::kThreshold);
  ObsContext obs = ObsContext::acquire(FlightMode::kThreshold);
  TelemetryPhaseScope phase_scope("simulate_threshold");
  MMR_TRACE_SPAN("simulate_threshold");

  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    const Server& server = sys.server(i);
    const std::uint64_t html = sys.html_bytes_on_server(i);
    const std::uint64_t capacity =
        server.storage_capacity > html ? server.storage_capacity - html : 0;
    ThresholdReplicator replicator(capacity, params);

    // Same stream structure as the LRU baseline so comparisons are paired.
    Rng rng = master.split(0x17B0 + i);
    const std::vector<PageRequest> requests =
        gen_.generate(i, params_.requests_per_server, rng);

    EventQueue<LruEvent> queue;
    for (const PageRequest& r : requests) {
      queue.push(r.time, {LruEvent::Kind::kPageArrival, r, {}});
    }

    std::uint32_t arrival_index = 0;
    while (!queue.empty()) {
      auto item = queue.pop();
      const double now = item.time;
      if (item.event.kind == LruEvent::Kind::kPageArrival) {
        const PageId j = item.event.request.page;
        const Page& p = sys.page(j);
        const NetworkSample net = perturb(server, params_.perturb, rng);

        std::uint64_t local_bytes = p.html_bytes;
        std::uint64_t remote_bytes = 0;
        std::uint32_t remote_count = 0;
        std::uint32_t req_hits = 0;
        std::uint32_t req_misses = 0;
        for (ObjectId k : p.compulsory) {
          const std::uint64_t bytes = sys.object_bytes(k);
          if (replicator.access(k, bytes, now)) {
            ++req_hits;
            local_bytes += bytes;
          } else {
            ++req_misses;
            remote_bytes += bytes;
            ++remote_count;
          }
        }
        const double t_local =
            net.ovhd_local + transfer_seconds(local_bytes, net.local_rate);
        const double t_remote =
            remote_count == 0
                ? 0.0
                : net.ovhd_repo +
                      transfer_seconds(remote_bytes, net.repo_rate);
        const double response = std::max(t_local, t_remote);
        mh.observe_response(response, t_local, t_remote);
        metrics.page_response.add(response);
        metrics.per_server_response[i].add(response);
        metrics.total_per_request.add(response);
        if (params_.capture_samples) metrics.page_samples.add(response);
        if (obs.active()) {
          obs.record(j, i, now, response,
                     ideal_response(server, local_bytes, remote_bytes,
                                    remote_count),
                     t_remote);
        }

        std::uint32_t optional_requested = 0;
        if (!p.optional.empty() && rng.bernoulli(params_.p_interested)) {
          const std::uint32_t n_req = optional_request_count(
              p, params_.optional_request_fraction);
          optional_requested = n_req;
          const auto picks = rng.sample_without_replacement(
              static_cast<std::uint32_t>(p.optional.size()), n_req);
          for (std::uint32_t idx : picks) {
            queue.push(now + response,
                       {LruEvent::Kind::kOptionalFetch, {}, {j, idx}});
          }
        }

        if (flight.sampled(arrival_index)) {
          FlightRecord r =
              flight.make(i, j, arrival_index, t_local, t_remote, response);
          r.optional_requested = optional_requested;
          r.cache_hits = req_hits;
          r.cache_misses = req_misses;
          flight.batch.push_back(std::move(r));
        }
        ++arrival_index;
      } else {
        const PageId j = item.event.optional.page;
        const std::uint32_t idx = item.event.optional.opt_index;
        const ObjectId k = sys.page(j).optional[idx].object;
        const std::uint64_t bytes = sys.object_bytes(k);
        const NetworkSample net = perturb(server, params_.perturb, rng);
        const double t =
            replicator.access(k, bytes, now)
                ? net.ovhd_local + transfer_seconds(bytes, net.local_rate)
                : net.ovhd_repo + transfer_seconds(bytes, net.repo_rate);
        metrics.optional_time.add(t);
        if (mh.optional_downloads != nullptr) mh.optional_downloads->add(1);
      }
    }
    flight.flush();
    metrics.replica_creations += replicator.creations();
    metrics.replica_drops += replicator.drops();
  }
  obs.flush();
  MMR_COUNT("sim.replica_creations", metrics.replica_creations);
  MMR_COUNT("sim.replica_drops", metrics.replica_drops);
  account_sim_samples(metrics);
  return metrics;
}

}  // namespace mmr
