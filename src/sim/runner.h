// Multi-seed experiment runner for the paper's figures.
//
// One *run* (seed) does what the paper's evaluation does:
//   1. generate a fresh workload with unconstrained capacities,
//   2. compute the unconstrained partition solution and record the load it
//      places on every component (this calibrates the "% capacity" axes),
//   3. apply the scenario's storage / processing / repository fractions,
//   4. run the full constrained policy and the requested baselines,
//   5. simulate every placement on the *same* request/perturbation stream,
//   6. report each policy's mean response time relative to the
//      unconstrained solution of the same run.
// Results are averaged over `runs` seeds (paper: 20) — in parallel, with
// per-run RNG substreams so thread count never changes the numbers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/policy.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "workload/params.h"

namespace mmr {

struct ScenarioSpec {
  /// Per-server storage as a fraction of the full-replication footprint.
  double storage_fraction = 1.0;
  /// Local processing capacity as a fraction of the load the site would
  /// receive if *everything* were served locally (the paper's "able to
  /// support x% of the arriving requests"): capacity = max(mandatory HTML
  /// load, fraction * all-local load). 0 leaves only the HTML servable
  /// (== Remote policy); 1.0 is never binding since the unconstrained
  /// solution uses less than the all-local load. nullopt = unconstrained.
  std::optional<double> local_proc_fraction;
  /// Repository capacity as a fraction of the repository load imposed by
  /// the *unconstrained* solution (100% == exactly what the optimal
  /// placement wants to send to R; 50% forces the off-loading negotiation
  /// to move half of that back to the sites). The paper does not publish
  /// its Figure 3 calibration; see EXPERIMENTS.md for the discussion.
  /// nullopt = unconstrained.
  std::optional<double> repo_capacity_fraction;

  bool run_lru = true;
  bool run_local = true;
  bool run_remote = true;
};

struct PolicyStats {
  RunningStats mean_response;   ///< absolute mean page response per run
  RunningStats rel_increase;    ///< vs unconstrained ours, per run
};

struct ScenarioResult {
  PolicyStats ours;
  PolicyStats lru;
  PolicyStats local;
  PolicyStats remote;
  RunningStats unconstrained_response;  ///< the per-run baseline itself
  RunningStats policy_d;                ///< model objective D of ours
  std::uint32_t infeasible_runs = 0;    ///< constrained policy infeasible
  std::uint32_t runs = 0;
};

struct ExperimentConfig {
  WorkloadParams workload;
  SimParams sim;
  PolicyOptions policy;
  std::uint32_t runs = 20;        ///< paper: average of 20 runs
  std::uint64_t base_seed = 42;
  /// Worker threads; 0 = hardware concurrency.
  std::uint32_t threads = 0;
};

/// Runs one scenario. `pool` may be shared across scenarios; pass nullptr to
/// run serially.
ScenarioResult run_scenario(const ExperimentConfig& config,
                            const ScenarioSpec& spec, ThreadPool* pool);

/// Per-run detail used by run_scenario and exposed for tests and examples.
struct RunOutcome {
  double unconstrained_response = 0;
  double ours_response = 0;
  double lru_response = 0;
  double local_response = 0;
  double remote_response = 0;
  double ours_objective = 0;
  bool ours_feasible = true;
};

RunOutcome run_single(const ExperimentConfig& config, const ScenarioSpec& spec,
                      std::uint64_t seed);

}  // namespace mmr
