#include "sim/request_gen.h"

#include "util/check.h"

namespace mmr {

RequestGenerator::RequestGenerator(const SystemModel& sys) : sys_(&sys) {
  tables_.resize(sys.num_servers());
  ids_.resize(sys.num_servers());
  rates_.resize(sys.num_servers());
  for (ServerId i = 0; i < sys.num_servers(); ++i) {
    const auto& pages = sys.pages_on_server(i);
    std::vector<double> weights;
    weights.reserve(pages.size());
    double rate = 0;
    for (PageId j : pages) {
      const double f = sys.page(j).frequency;
      if (f <= 0) continue;
      weights.push_back(f);
      ids_[i].push_back(j);
      rate += f;
    }
    rates_[i] = rate;
    if (!weights.empty()) tables_[i] = AliasTable(weights);
  }
}

std::vector<PageRequest> RequestGenerator::generate(ServerId i,
                                                    std::uint32_t count,
                                                    Rng& rng) const {
  MMR_CHECK(i < tables_.size());
  MMR_CHECK_MSG(!ids_[i].empty(),
                "server " << i << " has no pages with positive frequency");
  std::vector<PageRequest> requests;
  requests.reserve(count);
  double t = 0;
  for (std::uint32_t r = 0; r < count; ++r) {
    t += rng.exponential(rates_[i]);
    requests.push_back({t, ids_[i][tables_[i].sample(rng)]});
  }
  return requests;
}

double RequestGenerator::generate_into(ServerId i, std::uint32_t count,
                                       double t0, Rng& rng,
                                       std::vector<PageRequest>* out) const {
  MMR_CHECK(i < tables_.size());
  MMR_CHECK_MSG(!ids_[i].empty(),
                "server " << i << " has no pages with positive frequency");
  out->clear();
  if (out->capacity() < count) out->reserve(count);
  double t = t0;
  for (std::uint32_t r = 0; r < count; ++r) {
    t += rng.exponential(rates_[i]);
    out->push_back({t, ids_[i][tables_[i].sample(rng)]});
  }
  return t;
}

}  // namespace mmr
