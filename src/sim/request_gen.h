// Popularity-driven page-request streams.
//
// Per server, pages are drawn from an alias table proportional to f(W_j) and
// arrivals form a Poisson process with the server's aggregate page rate, so
// the request mix honours the hot/cold split of Table 1 and the admission
// throttle sees realistic inter-arrival times.
#pragma once

#include <cstdint>
#include <vector>

#include "model/system.h"
#include "util/rng.h"

namespace mmr {

struct PageRequest {
  double time = 0;  ///< arrival time, seconds from stream start
  PageId page = kInvalidId;
};

class RequestGenerator {
 public:
  /// Builds per-server alias tables from page frequencies.
  explicit RequestGenerator(const SystemModel& sys);

  /// Generates `count` arrivals for server i; deterministic in (i, rng).
  std::vector<PageRequest> generate(ServerId i, std::uint32_t count,
                                    Rng& rng) const;

  /// Batched variant for hot loops: overwrites *out with the next `count`
  /// arrivals continuing from time `t0` (the previous batch's last arrival),
  /// reusing its capacity so steady-state generation allocates nothing.
  /// Returns the last arrival time (pass it back as the next t0). The
  /// concatenation of batches is draw-for-draw identical to one generate()
  /// call of the combined count on the same rng.
  double generate_into(ServerId i, std::uint32_t count, double t0, Rng& rng,
                       std::vector<PageRequest>* out) const;

  /// Total page-request rate of server i (Poisson intensity).
  double arrival_rate(ServerId i) const { return rates_[i]; }

 private:
  const SystemModel* sys_;
  std::vector<AliasTable> tables_;        // per server
  std::vector<std::vector<PageId>> ids_;  // alias index -> PageId
  std::vector<double> rates_;
};

}  // namespace mmr
