#include "sim/perturb.h"

#include <algorithm>

#include "util/check.h"

namespace mmr {

void PerturbParams::validate() const {
  MMR_CHECK_MSG(p_nominal >= 0 && p_degraded >= 0 &&
                    p_nominal + p_degraded <= 1.0,
                "local-rate class probabilities invalid");
  for (const auto& [lo, hi] :
       {std::pair{nominal_lo, nominal_hi}, {degraded_lo, degraded_hi},
        {congested_lo, congested_hi}, {repo_rate_lo, repo_rate_hi},
        {repo_ovhd_lo, repo_ovhd_hi}, {local_ovhd_lo, local_ovhd_hi}}) {
    MMR_CHECK_MSG(lo > 0 && lo <= hi, "bad multiplier band [" << lo << ", "
                                                              << hi << "]");
  }
  MMR_CHECK_MSG(severity >= 0, "severity must be nonnegative");
}

namespace {

/// Uniform multiplier from [lo, hi], with the deviation from 1.0 scaled by
/// `severity` (severity 1 reproduces the band, 0 collapses it to 1.0).
double scaled_multiplier(double lo, double hi, double severity, Rng& rng) {
  const double m = rng.uniform(lo, hi);
  return std::max(1e-6, 1.0 + severity * (m - 1.0));
}

}  // namespace

NetworkSample perturb(const Server& estimates, const PerturbParams& params,
                      Rng& rng) {
  NetworkSample sample;

  const double cls = rng.uniform();
  double lo, hi;
  if (cls < params.p_nominal) {
    lo = params.nominal_lo;
    hi = params.nominal_hi;
  } else if (cls < params.p_nominal + params.p_degraded) {
    lo = params.degraded_lo;
    hi = params.degraded_hi;
  } else {
    lo = params.congested_lo;
    hi = params.congested_hi;
  }
  sample.local_rate =
      estimates.local_rate * scaled_multiplier(lo, hi, params.severity, rng);
  sample.repo_rate =
      estimates.repo_rate * scaled_multiplier(params.repo_rate_lo,
                                              params.repo_rate_hi,
                                              params.severity, rng);
  sample.ovhd_local =
      estimates.ovhd_local * scaled_multiplier(params.local_ovhd_lo,
                                               params.local_ovhd_hi,
                                               params.severity, rng);
  sample.ovhd_repo =
      estimates.ovhd_repo * scaled_multiplier(params.repo_ovhd_lo,
                                              params.repo_ovhd_hi,
                                              params.severity, rng);
  return sample;
}

}  // namespace mmr
